//! Fragment-addressed storage: where the bytes of a progressive archive
//! actually live.
//!
//! The paper's premise is that a retrieval moves *only the fragments a
//! derived QoI bound needs* — so the storage layer must be able to hand out
//! individual fragments without materialising the whole archive. This
//! module decouples the progressive representations from their bytes:
//!
//! * A **fragment** is one independently fetchable unit, addressed by
//!   [`FragmentId`] `(field, index)`. Index `0` is the field's metadata
//!   fragment for the multilevel/transform schemes (PMGARD level headers,
//!   ZFP exponent table); the remaining indices are the per-(level,
//!   bitplane) segments in storage order. Snapshot schemes have no metadata
//!   fragment — every fragment is one snapshot blob, and its error bound
//!   rides in the directory ([`FragmentInfo::eb_abs`]).
//! * A [`Manifest`] is the archive's always-resident header: shape, field
//!   names/schemes/ranges, the per-field fragment *directory* (offset,
//!   length, bound), the zero-outlier mask, and an opaque application
//!   metadata blob (`pqr-core` stores its QoI registry there).
//! * A [`FragmentSource`] serves fragments by id. Three backends share the
//!   one retrieval code path: resident datasets
//!   ([`RefactoredDataset`](crate::field::RefactoredDataset) /
//!   [`RefactoredField`] implement the trait directly), a serialized
//!   in-memory archive ([`InMemorySource`]), and a file opened lazily with
//!   byte-range reads ([`FileSource`]). [`CachedSource`] wraps any of them
//!   (typically a remote or disk source) with a shared LRU fragment cache.
//!
//! ## Serialized container
//!
//! ```text
//! "PQRX" u8:version  u64:manifest_len  manifest  fragment payloads...
//! ```
//!
//! The manifest stores absolute payload offsets, so a reader can fetch any
//! fragment with one range read and never has to scan the payload region.
//! Parsing validates the directory hostile-stream-hard: counts are checked
//! against the bytes that could back them, offsets must be in bounds,
//! ascending and non-overlapping — a corrupt or malicious directory fails
//! at parse time, not as an allocation bomb or an out-of-range read later.

use crate::mask::ZeroMask;
use crate::refactored::{Body, RefactoredField, Scheme, Snapshot};
use pqr_mgard::{MgardMeta, MgardStream};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::cache::LruCache;
use pqr_util::error::{PqrError, Result};
use pqr_zfp::{ZfpMeta, ZfpStream};
use std::borrow::Cow;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Container magic.
const MAGIC: &[u8; 4] = b"PQRX";
/// Container format version.
const VERSION: u8 = 1;
/// Bytes before the manifest: magic + version + manifest length.
const PREAMBLE: usize = 4 + 1 + 8;

/// Address of one fragment: which field, which fragment of that field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentId {
    /// Field index within the archive.
    pub field: u32,
    /// Fragment index within the field (see module docs for the layout).
    pub index: u32,
}

/// One directory entry: where a fragment's bytes live and what it is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentInfo {
    /// Absolute byte offset of the payload within the container.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// For snapshot-scheme fragments: the absolute L∞ bound this snapshot
    /// guarantees (cumulative for delta). `0.0` for metadata/plane
    /// fragments, whose bounds come from the decode model instead.
    pub eb_abs: f64,
}

/// Per-field manifest entry: identity, refactor-time metadata, directory.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldEntry {
    /// Field name.
    pub name: String,
    /// Progressive representation of this field.
    pub scheme: Scheme,
    /// `max − min` of the original data (drives relative bounds).
    pub range: f64,
    /// `max |x|` of the original data (initial zero-vector error bound).
    pub max_abs: f64,
    /// The fragment directory, in storage order.
    pub fragments: Vec<FragmentInfo>,
}

impl FieldEntry {
    /// Total payload bytes across this field's fragments.
    pub fn total_bytes(&self) -> usize {
        self.fragments.iter().map(|f| f.len as usize).sum()
    }
}

/// The archive's always-resident header: everything a retrieval session
/// must hold before fetching a single payload fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Shape shared by every field.
    pub dims: Vec<usize>,
    /// Per-field entries, in field-index order.
    pub fields: Vec<FieldEntry>,
    /// The zero-outlier mask (§V-A), if attached.
    pub mask: Option<ZeroMask>,
    /// Opaque application metadata (e.g. `pqr-core`'s QoI registry).
    pub app_meta: Vec<u8>,
}

impl Manifest {
    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Elements per field.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total payload bytes across all fields (the archived size minus the
    /// manifest itself).
    pub fn total_payload_bytes(&self) -> usize {
        self.fields.iter().map(FieldEntry::total_bytes).sum()
    }

    /// Raw (uncompressed f64) size of the dataset the archive refactors.
    pub fn raw_bytes(&self) -> usize {
        self.num_fields() * self.num_elements() * 8
    }

    /// Field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The directory entry for `id`, or a corrupt-request error.
    pub fn fragment(&self, id: FragmentId) -> Result<&FragmentInfo> {
        self.fields
            .get(id.field as usize)
            .and_then(|f| f.fragments.get(id.index as usize))
            .ok_or_else(|| {
                PqrError::InvalidRequest(format!(
                    "fragment ({}, {}) not in directory",
                    id.field, id.index
                ))
            })
    }
}

/// Cumulative fetch tallies of a [`FragmentSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Fragment fetches served (including cache hits).
    pub fetches: u64,
    /// Payload bytes handed out (including cache hits).
    pub fetched_bytes: u64,
    /// Fetches served from a cache without touching the backend.
    pub cache_hits: u64,
    /// Fetches that had to go to the backend.
    pub cache_misses: u64,
    /// Backend read operations performed: one per single-fragment fetch,
    /// one per *coalesced range* in a [`FragmentSource::read_many`] batch
    /// (adjacent fragments collapse into one seek+read), so batched
    /// execution is observable as `read_ops < fetches`.
    pub read_ops: u64,
    /// Milliseconds of backend I/O wall time hidden behind concurrent
    /// decode by the plan executor's overlapped prefetcher (I/O time minus
    /// the time decode actually blocked waiting for a promised payload).
    /// Raw sources report zero — the counter lives on the engine's
    /// [`FragmentStage`] and is overlaid by
    /// [`RetrievalEngine::source_stats`].
    ///
    /// [`RetrievalEngine::source_stats`]: crate::engine::RetrievalEngine::source_stats
    pub overlap_saved_ms: u64,
}

/// Serves progressive fragments by id — the seam between the retrieval
/// engine and wherever the archive's bytes live.
///
/// Every retrieval path (resident, serialized in memory, file-backed,
/// simulated-remote) pulls bytes through this trait, so partial retrieval
/// is partial *in bytes read*, not just in bytes counted.
pub trait FragmentSource: Send + Sync {
    /// The archive's manifest (owned: sources may synthesise it on demand).
    fn manifest(&self) -> Result<Manifest>;

    /// Fetches one fragment's payload. The returned buffer length must
    /// equal the directory-declared length.
    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>>;

    /// Fetches a whole batch of fragments in one call, returning payloads
    /// in request order. This is the batched entry point plan execution
    /// drives: backends override it to coalesce adjacent byte ranges into
    /// single reads ([`FileSource`]), consult a cache before batching the
    /// misses ([`CachedSource`]), or serve the batch in one round-trip
    /// (`pqr-transfer`'s remote store). The default degrades to a
    /// per-fragment loop, so every source stays correct.
    fn read_many(&self, ids: &[FragmentId]) -> Result<Vec<Arc<Vec<u8>>>> {
        ids.iter().map(|&id| self.fetch(id)).collect()
    }

    /// Cumulative fetch tallies. Sources that do not track (e.g. resident
    /// datasets, where a "fetch" is a memory copy) report zeros.
    fn stats(&self) -> SourceStats {
        SourceStats::default()
    }
}

impl<S: FragmentSource + ?Sized> FragmentSource for &S {
    fn manifest(&self) -> Result<Manifest> {
        (**self).manifest()
    }
    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        (**self).fetch(id)
    }
    fn read_many(&self, ids: &[FragmentId]) -> Result<Vec<Arc<Vec<u8>>>> {
        (**self).read_many(ids)
    }
    fn stats(&self) -> SourceStats {
        (**self).stats()
    }
}

/// A staging area for prefetched fragment payloads: plan execution batches
/// a round's schedule through [`FragmentSource::read_many`] and parks the
/// payloads here; the per-fragment reader fetches then consume from the
/// stage instead of re-reading the backend. Entries are removed on
/// consumption, so a stage never holds more than one in-flight round.
///
/// The stage also carries the hand-off protocol of the executor's
/// **overlapped** rounds: a background prefetcher *promises* the round's
/// fragment ids up front ([`FragmentStage::begin_round`]), delivers
/// payloads as its chunked `read_many` calls complete, and decode blocks in
/// [`FragmentStage::take_or_wait`] only for payloads that are promised but
/// not yet delivered. Clearing the promise set
/// ([`FragmentStage::end_round`] — always reached, the prefetcher holds a
/// drop guard) wakes every waiter into the per-fragment fallback path, so
/// a failed or aborted prefetch degrades to direct fetches instead of a
/// deadlock. Wait and I/O wall-clock tallies make the overlap observable
/// ([`FragmentStage::overlap_saved_ms`]).
#[derive(Debug, Default)]
pub struct FragmentStage {
    inner: Mutex<StageInner>,
    arrived: std::sync::Condvar,
    /// Nanoseconds decode spent blocked on promised-but-undelivered
    /// payloads (summed across workers — conservative: N workers blocked
    /// on one read each add their full wall time).
    wait_nanos: AtomicU64,
    /// Nanoseconds background prefetchers spent inside `read_many`.
    io_nanos: AtomicU64,
    /// Nanoseconds of I/O hidden behind decode, accumulated **per round**
    /// by the executor (`io − wait` deltas clamped at zero round by round,
    /// so one stall-heavy round cannot erase another round's saving).
    saved_nanos: AtomicU64,
}

#[derive(Debug, Default)]
struct StageInner {
    staged: std::collections::HashMap<FragmentId, Arc<Vec<u8>>>,
    /// Fragments an in-flight prefetch round has promised to deliver.
    promised: std::collections::HashSet<FragmentId>,
}

impl FragmentStage {
    /// An empty stage.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StageInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks a prefetched payload (and fulfils its promise, waking waiters).
    pub fn put(&self, id: FragmentId, payload: Arc<Vec<u8>>) {
        let mut inner = self.lock();
        inner.promised.remove(&id);
        inner.staged.insert(id, payload);
        drop(inner);
        self.arrived.notify_all();
    }

    /// Takes a staged payload out without waiting (consumed at most once).
    pub fn take(&self, id: FragmentId) -> Option<Arc<Vec<u8>>> {
        self.lock().staged.remove(&id)
    }

    /// Takes a staged payload, blocking while `id` is promised by an
    /// in-flight prefetch round. Returns `None` when the payload is neither
    /// staged nor promised — the caller's cue to fetch directly.
    pub fn take_or_wait(&self, id: FragmentId) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.lock();
        loop {
            if let Some(p) = inner.staged.remove(&id) {
                return Some(p);
            }
            if !inner.promised.contains(&id) {
                return None;
            }
            let t0 = std::time::Instant::now();
            inner = self.arrived.wait(inner).unwrap_or_else(|e| e.into_inner());
            self.wait_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Declares the fragments an overlapped round will deliver.
    pub fn begin_round(&self, ids: &[FragmentId]) {
        self.lock().promised.extend(ids.iter().copied());
    }

    /// Withdraws every outstanding promise, waking all waiters into their
    /// fallback path. Idempotent; staged payloads are unaffected.
    pub fn end_round(&self) {
        self.lock().promised.clear();
        self.arrived.notify_all();
    }

    /// Tallies background prefetch I/O wall time.
    pub fn add_io_nanos(&self, nanos: u64) {
        self.io_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Cumulative decode wait on promised payloads, in nanoseconds
    /// (summed across workers).
    pub fn wait_nanos(&self) -> u64 {
        self.wait_nanos.load(Ordering::Relaxed)
    }

    /// Cumulative background prefetch `read_many` wall time, in
    /// nanoseconds.
    pub fn io_nanos(&self) -> u64 {
        self.io_nanos.load(Ordering::Relaxed)
    }

    /// Credits `nanos` of I/O as hidden behind decode (called by the
    /// executor with each overlapped round's clamped `io − wait` delta).
    pub fn add_saved_nanos(&self, nanos: u64) {
        self.saved_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Milliseconds of prefetch I/O hidden behind concurrent decode,
    /// accumulated round by round. Conservative: a round's multi-worker
    /// wait is summed, so the true saving is at least this.
    pub fn overlap_saved_ms(&self) -> u64 {
        self.saved_nanos.load(Ordering::Relaxed) / 1_000_000
    }

    /// Number of payloads currently staged.
    pub fn len(&self) -> usize {
        self.lock().staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One coalesced read: `(run_offset, run_len, members)` where each member
/// is `(position_in_request, directory_entry)`.
type CoalescedRun = (u64, usize, Vec<(usize, FragmentInfo)>);

/// Resolves `ids` against the directory and groups them into maximal runs
/// of adjacent/overlapping byte ranges, each run carrying the positions of
/// its fragments in the original request. The directory guarantees
/// ascending non-overlapping fragment ranges, so a run's length is exactly
/// the sum of its fragments' lengths — coalescing never over-reads.
fn coalesce_ranges(manifest: &Manifest, ids: &[FragmentId]) -> Result<Vec<CoalescedRun>> {
    let mut resolved: Vec<(usize, FragmentInfo)> = ids
        .iter()
        .enumerate()
        .map(|(k, &id)| manifest.fragment(id).map(|info| (k, *info)))
        .collect::<Result<_>>()?;
    resolved.sort_by_key(|(_, info)| info.offset);
    let mut runs: Vec<CoalescedRun> = Vec::new();
    for (k, info) in resolved {
        match runs.last_mut() {
            Some((start, len, members)) if info.offset <= *start + *len as u64 => {
                let end = (info.offset + info.len).max(*start + *len as u64);
                *len = (end - *start) as usize;
                members.push((k, info));
            }
            _ => runs.push((info.offset, info.len as usize, vec![(k, info)])),
        }
    }
    Ok(runs)
}

// ---------------------------------------------------------------------------
// Splitting a resident field into fragments
// ---------------------------------------------------------------------------

/// The payloads of one field in fragment-index order, each with its
/// directory bound (`eb_abs`; `0.0` for non-snapshot fragments). Metadata
/// fragments are serialized on the fly; plane/blob payloads are borrowed.
pub(crate) fn field_payloads(field: &RefactoredField) -> Vec<(f64, Cow<'_, [u8]>)> {
    match &field.body {
        Body::Snapshots(snaps) => snaps
            .iter()
            .map(|s| (s.eb_abs, Cow::from(s.blob.as_slice())))
            .collect(),
        Body::Mgard(m) => {
            let mut v = vec![(0.0, Cow::from(m.meta().to_bytes()))];
            v.extend(m.plane_payloads().map(|p| (0.0, Cow::from(p))));
            v
        }
        Body::Zfp(z) => {
            let mut v = vec![(0.0, Cow::from(z.meta().to_bytes()))];
            v.extend(z.plane_payloads().map(|p| (0.0, Cow::from(p))));
            v
        }
    }
}

/// One fragment's payload from a resident field, without materialising the
/// whole payload list — the per-fetch path of the resident sources (the
/// metadata fragment is serialized on demand; plane/blob fetches are a
/// single indexed copy).
pub(crate) fn fetch_field_payload(field: &RefactoredField, index: u32) -> Result<Vec<u8>> {
    let idx = index as usize;
    let missing = || PqrError::InvalidRequest(format!("fragment {index} out of range"));
    match &field.body {
        Body::Snapshots(snaps) => snaps.get(idx).map(|s| s.blob.clone()).ok_or_else(missing),
        Body::Mgard(m) => {
            if idx == 0 {
                Ok(m.meta().to_bytes())
            } else {
                m.plane(idx - 1).map(<[u8]>::to_vec).ok_or_else(missing)
            }
        }
        Body::Zfp(z) => {
            if idx == 0 {
                Ok(z.meta().to_bytes())
            } else {
                z.plane(idx - 1).map(<[u8]>::to_vec).ok_or_else(missing)
            }
        }
    }
}

/// Builds a field's directory entry with offsets starting at `*offset`
/// (advanced past the field's payloads).
fn entry_for(name: &str, field: &RefactoredField, offset: &mut u64) -> FieldEntry {
    let fragments = field_payloads(field)
        .iter()
        .map(|(eb, payload)| {
            let info = FragmentInfo {
                offset: *offset,
                len: payload.len() as u64,
                eb_abs: *eb,
            };
            *offset += payload.len() as u64;
            info
        })
        .collect();
    FieldEntry {
        name: name.to_string(),
        scheme: field.scheme,
        range: field.range,
        max_abs: field.max_abs,
        fragments,
    }
}

/// Builds the manifest of a resident collection, with payload offsets laid
/// out as [`write_container`] would place them starting at `payload_start`.
pub(crate) fn build_manifest(
    dims: &[usize],
    fields: &[(&str, &RefactoredField)],
    mask: Option<&ZeroMask>,
    app_meta: &[u8],
    payload_start: u64,
) -> Manifest {
    let mut offset = payload_start;
    Manifest {
        dims: dims.to_vec(),
        fields: fields
            .iter()
            .map(|(name, f)| entry_for(name, f, &mut offset))
            .collect(),
        mask: mask.cloned(),
        app_meta: app_meta.to_vec(),
    }
}

// ---------------------------------------------------------------------------
// Serialized container
// ---------------------------------------------------------------------------

fn manifest_to_bytes(m: &Manifest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(m.dims.len() as u8);
    for &d in &m.dims {
        w.put_u64(d as u64);
    }
    w.put_u32(m.fields.len() as u32);
    for f in &m.fields {
        w.put_bytes(f.name.as_bytes());
        w.put_u8(f.scheme.tag());
        w.put_f64(f.range);
        w.put_f64(f.max_abs);
        w.put_u32(f.fragments.len() as u32);
        for frag in &f.fragments {
            w.put_u64(frag.offset);
            w.put_u64(frag.len);
            w.put_f64(frag.eb_abs);
        }
    }
    match &m.mask {
        Some(mask) => {
            w.put_u8(1);
            w.put_bytes(&mask.to_bytes());
        }
        None => w.put_u8(0),
    }
    w.put_bytes(&m.app_meta);
    w.finish()
}

/// Parses and validates a manifest blob. `payload_start` is where the
/// payload region begins and `total_len` the container's total size — the
/// directory must describe in-bounds, ascending, non-overlapping ranges.
fn manifest_from_bytes(bytes: &[u8], payload_start: u64, total_len: u64) -> Result<Manifest> {
    let mut r = ByteReader::new(bytes);
    let nd = r.get_u8()? as usize;
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        dims.push(r.get_u64()? as usize);
    }
    pqr_util::byteio::check_dims(&dims)?;
    // each field entry needs at least a name length, a scheme tag, two
    // f64s and a fragment count
    let nf = r.get_u32()? as usize;
    let nf = r.check_count(nf, 8 + 1 + 8 + 8 + 4)?;
    let mut fields = Vec::with_capacity(nf);
    let mut cursor = payload_start; // end of the previous fragment
    for _ in 0..nf {
        let name = String::from_utf8(r.get_bytes()?.to_vec())
            .map_err(|_| PqrError::CorruptStream("bad field name".into()))?;
        let scheme = Scheme::from_tag(r.get_u8()?)
            .ok_or_else(|| PqrError::CorruptStream("unknown scheme".into()))?;
        let range = r.get_f64()?;
        let max_abs = r.get_f64()?;
        let nfrag = r.get_u32()? as usize;
        let nfrag = r.check_count(nfrag, 8 + 8 + 8)?;
        let mut fragments = Vec::with_capacity(nfrag);
        for _ in 0..nfrag {
            let offset = r.get_u64()?;
            let len = r.get_u64()?;
            let eb_abs = r.get_f64()?;
            // in bounds, after the previous fragment (ascending implies
            // non-overlapping), and no arithmetic overflow on a hostile
            // offset/len pair
            let end = offset
                .checked_add(len)
                .filter(|&e| offset >= cursor && e <= total_len)
                .ok_or_else(|| {
                    PqrError::CorruptStream(format!(
                        "fragment range {offset}+{len} escapes container \
                         (payload region {cursor}..{total_len})"
                    ))
                })?;
            cursor = end;
            fragments.push(FragmentInfo {
                offset,
                len,
                eb_abs,
            });
        }
        fields.push(FieldEntry {
            name,
            scheme,
            range,
            max_abs,
            fragments,
        });
    }
    let mask = if r.get_u8()? == 1 {
        Some(ZeroMask::from_bytes(r.get_bytes()?)?)
    } else {
        None
    };
    let app_meta = r.get_bytes()?.to_vec();
    if r.remaining() != 0 {
        return Err(PqrError::CorruptStream("trailing manifest bytes".into()));
    }
    Ok(Manifest {
        dims,
        fields,
        mask,
        app_meta,
    })
}

/// Serializes fields into the fragment-addressed container format.
pub(crate) fn write_container(
    dims: &[usize],
    fields: &[(&str, &RefactoredField)],
    mask: Option<&ZeroMask>,
    app_meta: &[u8],
) -> Vec<u8> {
    // Offsets are fixed-width, so the manifest's size is independent of
    // their values: measure with zero offsets, then lay out for real.
    let probe = manifest_to_bytes(&build_manifest(dims, fields, mask, app_meta, 0));
    let payload_start = (PREAMBLE + probe.len()) as u64;
    let manifest = build_manifest(dims, fields, mask, app_meta, payload_start);
    let mbytes = manifest_to_bytes(&manifest);
    debug_assert_eq!(mbytes.len(), probe.len());

    let total = payload_start as usize + manifest.total_payload_bytes();
    let mut w = ByteWriter::with_capacity(total);
    w.put_raw(MAGIC);
    w.put_u8(VERSION);
    w.put_u64(mbytes.len() as u64);
    w.put_raw(&mbytes);
    for (_, field) in fields {
        for (_, payload) in field_payloads(field) {
            w.put_raw(&payload);
        }
    }
    debug_assert_eq!(w.len(), total);
    w.finish()
}

/// Upper bound on how many fragments a field of `scheme` over `dims` can
/// produce from a `num_bounds`-step ladder. The streaming writer sizes its
/// manifest reservation from this before any field has been encoded.
fn max_fragments(scheme: Scheme, dims: &[usize], num_bounds: usize) -> usize {
    match scheme {
        // one snapshot (or residual) per requested bound
        Scheme::Psz3 | Scheme::Psz3Delta => num_bounds,
        // metadata + one fragment per (level, bitplane)
        Scheme::PmgardHb | Scheme::PmgardOb => {
            1 + pqr_mgard::hierarchy::level_strides(dims).len()
                * pqr_mgard::bitplane::PLANES as usize
        }
        // metadata + one fragment per digit plane
        Scheme::Pzfp => 1 + pqr_zfp::MAX_TOTAL_PLANES as usize,
    }
}

/// Streams a container to `path` while fields are still being encoded.
///
/// `encode(i)` produces field `i`; with `overlap_io` the closure runs on
/// `workers` encoder threads while this thread writes completed fields'
/// payloads to disk in field order, so the disk is busy during the bulk of
/// the encode. Without overlap, all fields are encoded first (still across
/// `workers` threads) and written afterwards.
///
/// The manifest must precede the payloads it addresses, so its space is
/// reserved up front: fragment directory entries are fixed-width, which
/// means a manifest carrying every field at its [`max_fragments`] ceiling
/// upper-bounds the real one byte-for-byte. Payloads start right after the
/// reservation and the actual manifest is back-patched at the end, with the
/// slack zero-filled. [`manifest_from_bytes`] only requires fragment offsets
/// to sit at-or-after the manifest's end, so readers accept the gap.
///
/// The resulting file depends only on the encoded content and field order —
/// every `workers` / `overlap_io` combination yields identical bytes
/// (though, unlike [`write_container`]'s output, with a padded directory).
/// Returns the total file size. The file is left behind on error; callers
/// own cleanup.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_container_streaming<F>(
    path: &Path,
    dims: &[usize],
    names: &[String],
    scheme: Scheme,
    num_bounds: usize,
    mask: Option<&ZeroMask>,
    app_meta: &[u8],
    workers: usize,
    overlap_io: bool,
    encode: F,
) -> Result<u64>
where
    F: Fn(usize) -> Result<RefactoredField> + Sync,
{
    let io = |what: &str, e: std::io::Error| io_err(path, what, e);
    let reserve = {
        let frags = vec![
            FragmentInfo {
                offset: 0,
                len: 0,
                eb_abs: 0.0,
            };
            max_fragments(scheme, dims, num_bounds)
        ];
        let probe = Manifest {
            dims: dims.to_vec(),
            fields: names
                .iter()
                .map(|name| FieldEntry {
                    name: name.clone(),
                    scheme,
                    range: 0.0,
                    max_abs: 0.0,
                    fragments: frags.clone(),
                })
                .collect(),
            mask: mask.cloned(),
            app_meta: app_meta.to_vec(),
        };
        manifest_to_bytes(&probe).len()
    };
    let payload_start = (PREAMBLE + reserve) as u64;

    let mut file = std::fs::File::create(path).map_err(|e| io("cannot create", e))?;
    file.seek(SeekFrom::Start(payload_start))
        .map_err(|e| io("cannot seek in", e))?;

    let nfields = names.len();
    let workers = workers.clamp(1, nfields.max(1));
    let mut offset = payload_start;
    let mut entries: Vec<FieldEntry> = Vec::with_capacity(nfields);
    let write_field = |file: &mut std::fs::File,
                       entries: &mut Vec<FieldEntry>,
                       offset: &mut u64,
                       i: usize,
                       field: &RefactoredField|
     -> Result<()> {
        entries.push(entry_for(&names[i], field, offset));
        for (_, payload) in field_payloads(field) {
            file.write_all(&payload)
                .map_err(|e| io("cannot write", e))?;
        }
        Ok(())
    };

    if overlap_io && nfields > 0 {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<RefactoredField>)>();
        let dispenser = pqr_util::par::IndexDispenser::new(nfields);
        std::thread::scope(|s| -> Result<()> {
            for _ in 0..workers {
                let tx = tx.clone();
                let (dispenser, encode) = (&dispenser, &encode);
                s.spawn(move || {
                    while let Some(i) = dispenser.claim() {
                        // a send error means the writer bailed; stop encoding
                        if tx.send((i, encode(i))).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            // Fields finish out of order but the container layout is
            // field-ordered: park early arrivals, flush whenever the next
            // expected field lands. On failure, surface the error of the
            // *earliest* failing field so the outcome doesn't depend on
            // thread timing.
            let mut parked = std::collections::BTreeMap::new();
            let mut next = 0usize;
            let mut first_err: Option<(usize, PqrError)> = None;
            for (i, res) in rx {
                match res {
                    Ok(field) => {
                        parked.insert(i, field);
                    }
                    Err(e) if first_err.as_ref().is_none_or(|(j, _)| i < *j) => {
                        first_err = Some((i, e));
                    }
                    Err(_) => {}
                }
                while first_err.is_none()
                    && parked.first_key_value().is_some_and(|(&k, _)| k == next)
                {
                    let field = parked.remove(&next).unwrap();
                    write_field(&mut file, &mut entries, &mut offset, next, &field)?;
                    next += 1;
                }
            }
            match first_err {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        })?;
    } else {
        let fields = pqr_util::par::par_dynamic(nfields, workers, &encode)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        for (i, field) in fields.iter().enumerate() {
            write_field(&mut file, &mut entries, &mut offset, i, field)?;
        }
    }

    let manifest = Manifest {
        dims: dims.to_vec(),
        fields: entries,
        mask: mask.cloned(),
        app_meta: app_meta.to_vec(),
    };
    let mbytes = manifest_to_bytes(&manifest);
    debug_assert!(mbytes.len() <= reserve);
    if mbytes.len() > reserve {
        return Err(PqrError::CorruptStream(
            "manifest outgrew its reservation".into(),
        ));
    }
    file.seek(SeekFrom::Start(0))
        .map_err(|e| io("cannot seek in", e))?;
    let mut head = ByteWriter::with_capacity(payload_start as usize);
    head.put_raw(MAGIC);
    head.put_u8(VERSION);
    head.put_u64(mbytes.len() as u64);
    head.put_raw(&mbytes);
    let head = head.finish();
    file.write_all(&head).map_err(|e| io("cannot write", e))?;
    // zero the slack so the file is fully determined by its content
    file.write_all(&vec![0u8; payload_start as usize - head.len()])
        .map_err(|e| io("cannot write", e))?;
    file.flush().map_err(|e| io("cannot flush", e))?;
    Ok(offset)
}

/// Reads the container preamble, returning `(manifest_bytes_range,
/// payload_start)` after validating magic/version and the manifest length.
fn read_preamble(head: &[u8], total_len: u64) -> Result<(usize, u64)> {
    let mut r = ByteReader::new(head);
    if r.get_raw(4)? != MAGIC {
        return Err(PqrError::CorruptStream("bad container magic".into()));
    }
    if r.get_u8()? != VERSION {
        return Err(PqrError::CorruptStream("unsupported container".into()));
    }
    let mlen = r.get_u64()?;
    let payload_start = (PREAMBLE as u64)
        .checked_add(mlen)
        .filter(|&p| p <= total_len)
        .ok_or_else(|| PqrError::CorruptStream(format!("manifest length {mlen} escapes file")))?;
    Ok((mlen as usize, payload_start))
}

/// Rebuilds one resident [`RefactoredField`] by fetching every fragment of
/// field `i` through `source` — the materialising path (deserialization,
/// debugging); retrieval paths should refine through readers instead.
pub(crate) fn load_field(
    source: &dyn FragmentSource,
    manifest: &Manifest,
    i: usize,
) -> Result<RefactoredField> {
    let entry = &manifest.fields[i];
    let field = i as u32;
    let nfrag = entry.fragments.len();
    let fetch = |index: usize| {
        source.fetch(FragmentId {
            field,
            index: index as u32,
        })
    };
    let body = match entry.scheme {
        Scheme::Psz3 | Scheme::Psz3Delta => {
            let mut snaps = Vec::with_capacity(nfrag);
            for (k, info) in entry.fragments.iter().enumerate() {
                snaps.push(Snapshot {
                    eb_abs: info.eb_abs,
                    blob: fetch(k)?.to_vec(),
                });
            }
            Body::Snapshots(snaps)
        }
        Scheme::PmgardHb | Scheme::PmgardOb => {
            if nfrag == 0 {
                return Err(PqrError::CorruptStream("mgard field without meta".into()));
            }
            let meta = MgardMeta::from_bytes(&fetch(0)?)?;
            check_meta_dims(&entry.name, meta.dims(), &manifest.dims)?;
            let planes: Vec<Vec<u8>> = (1..nfrag)
                .map(|k| fetch(k).map(|b| b.to_vec()))
                .collect::<Result<_>>()?;
            Body::Mgard(MgardStream::from_parts(meta, planes)?)
        }
        Scheme::Pzfp => {
            if nfrag == 0 {
                return Err(PqrError::CorruptStream("zfp field without meta".into()));
            }
            let meta = ZfpMeta::from_bytes(&fetch(0)?)?;
            check_meta_dims(&entry.name, meta.dims(), &manifest.dims)?;
            let planes: Vec<Vec<u8>> = (1..nfrag)
                .map(|k| fetch(k).map(|b| b.to_vec()))
                .collect::<Result<_>>()?;
            Body::Zfp(ZfpStream::from_parts(meta, planes)?)
        }
    };
    Ok(RefactoredField {
        scheme: entry.scheme,
        dims: manifest.dims.clone(),
        range: entry.range,
        max_abs: entry.max_abs,
        body,
    })
}

/// A field's embedded metadata must agree with the manifest shape —
/// readers trust the manifest's element count for their buffers.
fn check_meta_dims(name: &str, meta_dims: &[usize], manifest_dims: &[usize]) -> Result<()> {
    if meta_dims != manifest_dims {
        return Err(PqrError::ShapeMismatch(format!(
            "field '{name}' metadata shape {meta_dims:?} disagrees with manifest {manifest_dims:?}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct AtomicStats {
    fetches: AtomicU64,
    fetched_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    read_ops: AtomicU64,
}

impl AtomicStats {
    fn record(&self, bytes: usize, hit: bool) {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.fetched_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Tallies `ops` backend read operations (seeks/range reads/batch
    /// round-trips — whatever the backend's unit of real I/O is).
    fn record_ops(&self, ops: u64) {
        self.read_ops.fetch_add(ops, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SourceStats {
        SourceStats {
            fetches: self.fetches.load(Ordering::Relaxed),
            fetched_bytes: self.fetched_bytes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            overlap_saved_ms: 0,
        }
    }
}

/// A serialized fragment-addressed archive held fully in memory. Fetches
/// are slice copies; counters still track them, so tests and benches can
/// compare byte movement across backends.
#[derive(Debug)]
pub struct InMemorySource {
    bytes: Vec<u8>,
    manifest: Manifest,
    stats: AtomicStats,
}

impl InMemorySource {
    /// Parses a serialized container (from [`RefactoredDataset::to_bytes`]
    /// or a file read into memory).
    ///
    /// [`RefactoredDataset::to_bytes`]: crate::field::RefactoredDataset::to_bytes
    pub fn new(bytes: Vec<u8>) -> Result<Self> {
        let total = bytes.len() as u64;
        if bytes.len() < PREAMBLE {
            return Err(PqrError::CorruptStream("container too short".into()));
        }
        let (mlen, payload_start) = read_preamble(&bytes[..PREAMBLE], total)?;
        let mbytes = bytes
            .get(PREAMBLE..PREAMBLE + mlen)
            .ok_or_else(|| PqrError::CorruptStream("truncated manifest".into()))?;
        let manifest = manifest_from_bytes(mbytes, payload_start, total)?;
        Ok(Self {
            bytes,
            manifest,
            stats: AtomicStats::default(),
        })
    }

    /// Total container size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }
}

impl FragmentSource for InMemorySource {
    fn manifest(&self) -> Result<Manifest> {
        Ok(self.manifest.clone())
    }

    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        let info = self.manifest.fragment(id)?;
        // parse-time validation guarantees the range is in bounds
        let payload = self.bytes[info.offset as usize..(info.offset + info.len) as usize].to_vec();
        self.stats.record(payload.len(), false);
        self.stats.record_ops(1);
        Ok(Arc::new(payload))
    }

    fn read_many(&self, ids: &[FragmentId]) -> Result<Vec<Arc<Vec<u8>>>> {
        // memory "reads" are slice copies; coalescing only changes the op
        // tally, keeping read-op accounting comparable across backends
        let runs = coalesce_ranges(&self.manifest, ids)?;
        let mut out: Vec<Option<Arc<Vec<u8>>>> = vec![None; ids.len()];
        for (_, _, members) in &runs {
            for &(k, info) in members {
                let payload =
                    self.bytes[info.offset as usize..(info.offset + info.len) as usize].to_vec();
                self.stats.record(payload.len(), false);
                out[k] = Some(Arc::new(payload));
            }
        }
        self.stats.record_ops(runs.len() as u64);
        Ok(out
            .into_iter()
            .map(|p| p.expect("every id resolved"))
            .collect())
    }

    fn stats(&self) -> SourceStats {
        self.stats.snapshot()
    }
}

/// A fragment source over an archive file, opened lazily: only the
/// preamble and manifest are read at open; every fragment fetch is one
/// `seek + read_exact` of the directory-declared byte range. The file is
/// never loaded whole — this is what makes partial retrieval partial in
/// *disk bytes read*.
#[derive(Debug)]
pub struct FileSource {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    manifest: Manifest,
    header_bytes: usize,
    stats: AtomicStats,
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> PqrError {
    PqrError::InvalidRequest(format!("{op} '{}': {e}", path.display()))
}

impl FileSource {
    /// Opens an archive file, reading and validating only the manifest.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::open(&path).map_err(|e| io_err(&path, "cannot open", e))?;
        let total = file
            .metadata()
            .map_err(|e| io_err(&path, "cannot stat", e))?
            .len();
        let mut head = [0u8; PREAMBLE];
        file.read_exact(&mut head)
            .map_err(|e| io_err(&path, "cannot read preamble of", e))?;
        let (mlen, payload_start) = read_preamble(&head, total)?;
        let mut mbytes = vec![0u8; mlen];
        file.read_exact(&mut mbytes)
            .map_err(|e| io_err(&path, "cannot read manifest of", e))?;
        let manifest = manifest_from_bytes(&mbytes, payload_start, total)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            manifest,
            header_bytes: PREAMBLE + mlen,
            stats: AtomicStats::default(),
        })
    }

    /// The archive file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes read at open time (preamble + manifest).
    pub fn header_bytes(&self) -> usize {
        self.header_bytes
    }

    /// Total disk bytes this source has read: the always-read header plus
    /// every fetched fragment range.
    pub fn disk_bytes_read(&self) -> u64 {
        self.header_bytes as u64 + self.stats.snapshot().fetched_bytes
    }
}

impl FragmentSource for FileSource {
    fn manifest(&self) -> Result<Manifest> {
        Ok(self.manifest.clone())
    }

    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        let info = self.manifest.fragment(id)?;
        let mut payload = vec![0u8; info.len as usize];
        {
            let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
            f.seek(SeekFrom::Start(info.offset))
                .map_err(|e| io_err(&self.path, "cannot seek", e))?;
            f.read_exact(&mut payload)
                .map_err(|e| io_err(&self.path, "cannot read fragment from", e))?;
        }
        self.stats.record(payload.len(), false);
        self.stats.record_ops(1);
        Ok(Arc::new(payload))
    }

    fn read_many(&self, ids: &[FragmentId]) -> Result<Vec<Arc<Vec<u8>>>> {
        // one seek + read per coalesced run: fragments of one refinement
        // front sit adjacently in the container, so a batch of n fragments
        // typically costs far fewer than n read operations
        let runs = coalesce_ranges(&self.manifest, ids)?;
        let mut out: Vec<Option<Arc<Vec<u8>>>> = vec![None; ids.len()];
        for (start, len, members) in &runs {
            let mut buf = vec![0u8; *len];
            {
                let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
                f.seek(SeekFrom::Start(*start))
                    .map_err(|e| io_err(&self.path, "cannot seek", e))?;
                f.read_exact(&mut buf)
                    .map_err(|e| io_err(&self.path, "cannot read fragment run from", e))?;
            }
            for &(k, info) in members {
                let rel = (info.offset - start) as usize;
                let payload = buf[rel..rel + info.len as usize].to_vec();
                self.stats.record(payload.len(), false);
                out[k] = Some(Arc::new(payload));
            }
        }
        self.stats.record_ops(runs.len() as u64);
        Ok(out
            .into_iter()
            .map(|p| p.expect("every id resolved"))
            .collect())
    }

    fn stats(&self) -> SourceStats {
        self.stats.snapshot()
    }
}

/// Key type of the shared fragment cache: a per-source salt plus the
/// fragment address, so several archives can share one [`LruCache`].
pub type FragmentCacheKey = (u64, u32, u32);

/// The LRU fragment cache shared between [`CachedSource`]s.
pub type FragmentCache = LruCache<FragmentCacheKey>;

/// Distinguishes sources sharing one cache.
static NEXT_SALT: AtomicU64 = AtomicU64::new(0);

/// Wraps a backend with a (shareable) LRU fragment cache: repeated fetches
/// of the same fragment are served locally and tallied as cache hits.
#[derive(Debug)]
pub struct CachedSource<S> {
    inner: S,
    cache: Arc<FragmentCache>,
    salt: u64,
    stats: AtomicStats,
}

impl<S: FragmentSource> CachedSource<S> {
    /// Wraps `inner` with `cache` (shareable across sources).
    pub fn new(inner: S, cache: Arc<FragmentCache>) -> Self {
        Self {
            inner,
            cache,
            salt: NEXT_SALT.fetch_add(1, Ordering::Relaxed),
            stats: AtomicStats::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<FragmentCache> {
        &self.cache
    }
}

impl<S: FragmentSource> FragmentSource for CachedSource<S> {
    fn manifest(&self) -> Result<Manifest> {
        self.inner.manifest()
    }

    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        let key = (self.salt, id.field, id.index);
        if let Some(hit) = self.cache.get(&key) {
            self.stats.record(hit.len(), true);
            return Ok(hit);
        }
        let payload = self.inner.fetch(id)?;
        self.cache.insert(key, Arc::clone(&payload));
        self.stats.record(payload.len(), false);
        self.stats.record_ops(1);
        Ok(payload)
    }

    fn read_many(&self, ids: &[FragmentId]) -> Result<Vec<Arc<Vec<u8>>>> {
        // consult the LRU first; only the misses ride one batched backend
        // read (which the inner source may further coalesce)
        let mut out: Vec<Option<Arc<Vec<u8>>>> = vec![None; ids.len()];
        let mut miss_ids = Vec::new();
        let mut miss_pos = Vec::new();
        for (k, &id) in ids.iter().enumerate() {
            let key = (self.salt, id.field, id.index);
            if let Some(hit) = self.cache.get(&key) {
                self.stats.record(hit.len(), true);
                out[k] = Some(hit);
            } else {
                miss_ids.push(id);
                miss_pos.push(k);
            }
        }
        if !miss_ids.is_empty() {
            let payloads = self.inner.read_many(&miss_ids)?;
            self.stats.record_ops(1);
            for ((id, payload), k) in miss_ids.iter().zip(payloads).zip(miss_pos) {
                let key = (self.salt, id.field, id.index);
                self.cache.insert(key, Arc::clone(&payload));
                self.stats.record(payload.len(), false);
                out[k] = Some(payload);
            }
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("every id resolved"))
            .collect())
    }

    fn stats(&self) -> SourceStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dataset;

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(&[n]);
        for (c, name) in ["u", "v"].iter().enumerate() {
            ds.add_field(
                name,
                (0..n)
                    .map(|i| ((i + c * 17) as f64 * 0.02).sin() * 5.0)
                    .collect(),
            )
            .unwrap();
        }
        ds
    }

    fn archive_bytes(scheme: Scheme) -> Vec<u8> {
        dataset(400)
            .refactor_with_bounds(scheme, &[1e-1, 1e-3, 1e-5])
            .unwrap()
            .to_bytes()
    }

    #[test]
    fn container_roundtrips_across_schemes() {
        for scheme in Scheme::extended() {
            let bytes = archive_bytes(scheme);
            let src = InMemorySource::new(bytes).unwrap();
            let m = src.manifest().unwrap();
            assert_eq!(m.num_fields(), 2, "{}", scheme.name());
            assert_eq!(m.dims, vec![400]);
            for (i, f) in m.fields.iter().enumerate() {
                assert_eq!(f.scheme, scheme);
                assert!(!f.fragments.is_empty());
                let rebuilt = load_field(&src, &m, i).unwrap();
                assert_eq!(rebuilt.scheme(), scheme);
                assert_eq!(rebuilt.dims(), &[400]);
            }
        }
    }

    #[test]
    fn fetch_returns_directory_declared_lengths() {
        let src = InMemorySource::new(archive_bytes(Scheme::PmgardHb)).unwrap();
        let m = src.manifest().unwrap();
        for (fi, f) in m.fields.iter().enumerate() {
            for (ki, info) in f.fragments.iter().enumerate() {
                let payload = src
                    .fetch(FragmentId {
                        field: fi as u32,
                        index: ki as u32,
                    })
                    .unwrap();
                assert_eq!(payload.len() as u64, info.len);
            }
        }
        let s = src.stats();
        assert!(s.fetches > 0);
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn out_of_directory_fetch_is_an_error() {
        let src = InMemorySource::new(archive_bytes(Scheme::Psz3)).unwrap();
        assert!(src.fetch(FragmentId { field: 9, index: 0 }).is_err());
        assert!(src
            .fetch(FragmentId {
                field: 0,
                index: 999,
            })
            .is_err());
    }

    #[test]
    fn truncated_containers_fail_cleanly() {
        let bytes = archive_bytes(Scheme::Psz3Delta);
        for cut in [0, 3, PREAMBLE - 1, PREAMBLE + 4, bytes.len() / 2] {
            assert!(
                InMemorySource::new(bytes[..cut].to_vec()).is_err(),
                "cut at {cut} should fail"
            );
        }
        // cutting payloads (but not the manifest) must fail the directory
        // bound check at parse time, not at fetch time
        let head_only = bytes[..bytes.len() - 10].to_vec();
        assert!(InMemorySource::new(head_only).is_err());
    }

    /// Crafts a minimal container whose single field's directory is
    /// attacker-controlled.
    fn crafted(fragments: &[(u64, u64)]) -> Vec<u8> {
        let mut m = ByteWriter::new();
        m.put_u8(1); // nd
        m.put_u64(4); // dim
        m.put_u32(1); // one field
        m.put_bytes(b"f");
        m.put_u8(0); // Psz3
        m.put_f64(1.0);
        m.put_f64(1.0);
        m.put_u32(fragments.len() as u32);
        for &(offset, len) in fragments {
            m.put_u64(offset);
            m.put_u64(len);
            m.put_f64(0.1);
        }
        m.put_u8(0); // no mask
        m.put_bytes(&[]); // app meta
        let mbytes = m.finish();
        let mut w = ByteWriter::new();
        w.put_raw(MAGIC);
        w.put_u8(VERSION);
        w.put_u64(mbytes.len() as u64);
        w.put_raw(&mbytes);
        w.put_raw(&[0xAB; 64]); // payload region
        w.finish()
    }

    /// Payload-region start of a crafted container with `n` fragments (the
    /// manifest grows with the directory, so it depends on `n`).
    fn crafted_payload_start(n: usize) -> u64 {
        crafted(&vec![(0, 0); n]).len() as u64 - 64
    }

    #[test]
    fn hostile_directories_rejected_at_parse_time() {
        let ps1 = crafted_payload_start(1);
        let ps2 = crafted_payload_start(2);
        // a well-formed directory parses
        assert!(InMemorySource::new(crafted(&[(ps2, 10), (ps2 + 10, 20)])).is_ok());
        // overlapping ranges
        assert!(InMemorySource::new(crafted(&[(ps2, 10), (ps2 + 5, 10)])).is_err());
        // descending offsets
        assert!(InMemorySource::new(crafted(&[(ps2 + 30, 10), (ps2, 10)])).is_err());
        // range escaping the container
        assert!(InMemorySource::new(crafted(&[(ps1, 65)])).is_err());
        // offset before the payload region (inside the manifest)
        assert!(InMemorySource::new(crafted(&[(0, 8)])).is_err());
        // offset+len overflowing u64
        assert!(InMemorySource::new(crafted(&[(u64::MAX - 3, 10)])).is_err());
        // absurd fragment count that the remaining bytes cannot back
        let mut bomb = crafted(&[(ps1, 10)]);
        // fragment-count field sits right after dims+field header; craft via
        // direct byte surgery is brittle — instead check the count guard
        // through a directory that *claims* more fragments than fit
        let claim_pos = {
            // find the u32 fragment count (value 1) preceding the first
            // fragment's offset bytes
            let needle = 1u32.to_le_bytes();
            let mut pos = None;
            for i in (0..bomb.len() - 4).rev() {
                if bomb[i..i + 4] == needle && i > PREAMBLE {
                    pos = Some(i);
                    break;
                }
            }
            pos.unwrap()
        };
        bomb[claim_pos..claim_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(InMemorySource::new(bomb).is_err());
    }

    #[test]
    fn zero_snapshot_field_is_exhausted_not_a_panic() {
        // a container declaring a snapshot field with an empty directory is
        // legal (ladder-less archive); refinement must degrade to "born
        // exhausted at the zero-vector bound", not index an empty ladder
        let src = Arc::new(InMemorySource::new(crafted(&[])).unwrap());
        let manifest = src.manifest().unwrap();
        let mut reader = crate::refactored::FieldReader::open(src, &manifest, 0).unwrap();
        assert!(reader.exhausted());
        reader.refine_to(1e-9).unwrap();
        assert_eq!(reader.total_fetched(), 0);
        assert_eq!(reader.guaranteed_bound(), 1.0); // the crafted max_abs
    }

    #[test]
    fn meta_dims_disagreeing_with_manifest_rejected() {
        // a two-field archive whose manifests we cross-wire: field 0's
        // metadata fragment describes the right dims, so loading succeeds;
        // but a manifest lying about the shape must fail load_field
        let bytes = archive_bytes(Scheme::PmgardHb);
        let src = InMemorySource::new(bytes).unwrap();
        let mut m = src.manifest().unwrap();
        assert!(load_field(&src, &m, 0).is_ok());
        m.dims = vec![999];
        assert!(load_field(&src, &m, 0).is_err());
    }

    #[test]
    fn cached_source_hits_on_refetch() {
        let src = InMemorySource::new(archive_bytes(Scheme::PmgardHb)).unwrap();
        let cache = Arc::new(FragmentCache::new(1 << 20));
        let cached = CachedSource::new(src, Arc::clone(&cache));
        let id = FragmentId { field: 0, index: 1 };
        let a = cached.fetch(id).unwrap();
        let b = cached.fetch(id).unwrap();
        assert_eq!(a, b);
        let s = cached.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        // the inner source was only touched once
        assert_eq!(cached.inner().stats().fetches, 1);
    }

    #[test]
    fn concurrent_read_many_tallies_exactly() {
        // 8 threads hammering one CachedSource with batched reads: the
        // atomic stats must lose no update — every served payload is
        // tallied, hits + misses == fetches, and byte counts add up to
        // the directory-declared sizes exactly
        let src = InMemorySource::new(archive_bytes(Scheme::PmgardHb)).unwrap();
        let manifest = src.manifest().unwrap();
        let cached = CachedSource::new(src, Arc::new(FragmentCache::new(64 << 20)));
        let ids: Vec<FragmentId> = manifest
            .fields
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| {
                (0..f.fragments.len()).map(move |ki| FragmentId {
                    field: fi as u32,
                    index: ki as u32,
                })
            })
            .collect();
        let batch_bytes: u64 = ids
            .iter()
            .map(|&id| manifest.fragment(id).unwrap().len)
            .sum();
        const THREADS: u64 = 8;
        const ROUNDS: u64 = 25;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let (cached, ids) = (&cached, &ids);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let payloads = cached.read_many(ids).unwrap();
                        for (&id, p) in ids.iter().zip(&payloads) {
                            assert_eq!(
                                p.len() as u64,
                                cached.manifest().unwrap().fragment(id).unwrap().len
                            );
                        }
                    }
                });
            }
        });
        let stats = cached.stats();
        assert_eq!(stats.fetches, THREADS * ROUNDS * ids.len() as u64);
        assert_eq!(stats.fetched_bytes, THREADS * ROUNDS * batch_bytes);
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.fetches);
        // the cache is big enough to hold the archive: once everything is
        // resident, whole batches hit without a backend read — misses stay
        // a small fraction of the total (racing first-round threads may
        // each miss, but never lose a tally)
        assert!(stats.cache_misses >= ids.len() as u64);
        assert!(stats.cache_misses <= THREADS * ids.len() as u64);
    }

    #[test]
    fn shared_cache_does_not_leak_across_sources() {
        let cache = Arc::new(FragmentCache::new(1 << 20));
        let a = CachedSource::new(
            InMemorySource::new(archive_bytes(Scheme::PmgardHb)).unwrap(),
            Arc::clone(&cache),
        );
        let b = CachedSource::new(
            InMemorySource::new(archive_bytes(Scheme::Psz3)).unwrap(),
            Arc::clone(&cache),
        );
        let id = FragmentId { field: 0, index: 0 };
        let pa = a.fetch(id).unwrap();
        let pb = b.fetch(id).unwrap();
        // same address, different archives: the salt keeps them apart
        assert_ne!(pa, pb);
        assert_eq!(b.stats().cache_hits, 0);
    }

    #[test]
    fn file_source_reads_only_requested_ranges() {
        let bytes = archive_bytes(Scheme::PmgardHb);
        let total = bytes.len() as u64;
        let dir = std::env::temp_dir().join("pqr_fragstore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.pqrx");
        std::fs::write(&path, &bytes).unwrap();

        let src = FileSource::open(&path).unwrap();
        assert!(
            src.disk_bytes_read() < total,
            "open must not slurp the file"
        );
        let payload = src.fetch(FragmentId { field: 0, index: 0 }).unwrap();
        let info = *src
            .manifest()
            .unwrap()
            .fragment(FragmentId { field: 0, index: 0 })
            .unwrap();
        assert_eq!(payload.len() as u64, info.len);
        assert_eq!(src.disk_bytes_read(), src.header_bytes() as u64 + info.len);
        // the fetched range matches the in-memory container byte for byte
        assert_eq!(
            payload.as_slice(),
            &bytes[info.offset as usize..(info.offset + info.len) as usize]
        );
        std::fs::remove_file(&path).ok();
    }
}
