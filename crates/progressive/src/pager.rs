//! Bounded-memory tiering for [`ProgressStore`](crate::store::ProgressStore):
//! the global byte budget,
//! the compressed-fragment RAM tier, and the cost-aware eviction policy.
//!
//! A [`ProgressStore`](crate::store::ProgressStore) only ever deepens —
//! decoded per-field state grows monotonically — so a long-lived server
//! is capped by RAM unless something can *release* decoded state. Because
//! the plan layer's bound models are exact and metadata-only, any decoded
//! depth is recomputable bit-identically from its
//! [`ReaderProgress`](crate::refactored::ReaderProgress) marker, which
//! makes eviction safe here in a way generic caches cannot promise. The
//! store keeps three tiers:
//!
//! 1. **Decoded in RAM** — resident master readers + published snapshots,
//!    charged against a shared [`StoreBudget`].
//! 2. **Compressed in RAM** — raw fragment payloads in a byte-budgeted
//!    [`LruCache`] (a quarter of the budget), so rehydration usually
//!    replays decodes without touching the source.
//! 3. **Source** — the archive itself (file, memory, remote).
//!
//! When the decoded tier exceeds its share of the budget, the store
//! demotes cold fields: decoded state is dropped, only the small progress
//! marker survives, and the next request transparently **rehydrates** by
//! re-executing the exact restore plan for the evicted depth (tier 2
//! first, then the source).
//!
//! One budget can be shared by several stores (the serving layer hands a
//! Registry-wide budget to every dataset), so `resident`/`peak` are global
//! tallies while each store demotes only its own fields.
//!
//! The knobs: [`EngineConfig::store_budget_bytes`](crate::engine::EngineConfig),
//! the `PQR_STORE_BUDGET` environment variable (accepted suffixes
//! `k`/`m`/`g`, binary multiples), and `pqr serve --store-budget`.

use pqr_util::cache::LruCache;
use pqr_util::error::{PqrError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable consulted by [`StoreBudget::from_env`] (and thus
/// by every [`ProgressStore::open`](crate::store::ProgressStore::open)).
pub const STORE_BUDGET_ENV: &str = "PQR_STORE_BUDGET";

/// Fraction of the budget reserved for the compressed-fragment tier
/// (expressed as a divisor: tier capacity = `limit / TIER_DIVISOR`).
const TIER_DIVISOR: u64 = 4;

/// Key of the compressed-fragment tier: `(store id, field, fragment)`.
/// The store id keeps several stores sharing one budget from colliding.
pub type TierKey = (u64, u32, u32);

/// Parses a byte-budget string: a plain byte count or a count with a
/// `k`/`m`/`g` suffix (binary multiples, case-insensitive). `"0"` means
/// unbounded.
pub fn parse_budget(s: &str) -> Result<u64> {
    let t = s.trim();
    let (digits, mult) = match t.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&t[..t.len() - 1], 1u64 << 10),
        Some(b'm') | Some(b'M') => (&t[..t.len() - 1], 1u64 << 20),
        Some(b'g') | Some(b'G') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| PqrError::InvalidRequest(format!("bad byte budget '{s}'")))?;
    n.checked_mul(mult)
        .ok_or_else(|| PqrError::InvalidRequest(format!("byte budget '{s}' overflows")))
}

/// The global decoded-state byte budget a set of
/// [`ProgressStore`](crate::store::ProgressStore)s charges against, plus
/// the compressed-fragment RAM tier rehydration reads through.
///
/// `limit == 0` means unbounded: charges are still tallied (so the
/// working set is measurable) but nothing is ever evicted and no fragment
/// tier is kept.
pub struct StoreBudget {
    /// Total budget in bytes; 0 = unbounded.
    limit: u64,
    /// Ceiling for the decoded tier (the rest is the fragment tier).
    decoded_limit: u64,
    /// Decoded-tier bytes currently charged, across every attached store.
    resident: AtomicU64,
    /// High-water mark of `resident` + fragment-tier bytes.
    peak: AtomicU64,
    /// Next store id (see [`StoreBudget::register_store`]).
    next_store: AtomicU64,
    /// Compressed fragments kept in RAM for cheap rehydration.
    fragments: Option<LruCache<TierKey>>,
}

impl StoreBudget {
    /// A budget that never evicts (but still tracks resident bytes).
    pub fn unbounded() -> Self {
        Self::with_limit(0)
    }

    /// A budget of `limit` bytes (`0` = unbounded). Three quarters bound
    /// the decoded tier; one quarter caps the compressed-fragment tier.
    pub fn with_limit(limit: u64) -> Self {
        let tier_cap = limit / TIER_DIVISOR;
        Self {
            limit,
            decoded_limit: limit - tier_cap,
            resident: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            next_store: AtomicU64::new(0),
            fragments: (limit > 0).then(|| LruCache::new(tier_cap as usize)),
        }
    }

    /// Builds a budget from the `PQR_STORE_BUDGET` environment variable:
    /// unset or empty means unbounded, anything else must parse via
    /// [`parse_budget`].
    pub fn from_env() -> Result<Self> {
        match std::env::var(STORE_BUDGET_ENV) {
            Ok(v) if !v.trim().is_empty() => Ok(Self::with_limit(parse_budget(&v)?)),
            _ => Ok(Self::unbounded()),
        }
    }

    /// Total budget in bytes (0 = unbounded).
    pub fn limit_bytes(&self) -> u64 {
        self.limit
    }

    /// True when this budget can trigger evictions at all.
    pub fn is_bounded(&self) -> bool {
        self.limit > 0
    }

    /// Hands out a unique id to a store attaching to this budget (the
    /// fragment-tier key namespace).
    pub fn register_store(&self) -> u64 {
        self.next_store.fetch_add(1, Ordering::Relaxed)
    }

    /// Charges `bytes` of decoded state and updates the peak watermark.
    pub fn charge(&self, bytes: u64) {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak
            .fetch_max(now + self.tier_bytes(), Ordering::Relaxed);
    }

    /// Releases `bytes` of decoded state.
    pub fn discharge(&self, bytes: u64) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Swaps a charge of `old` bytes for one of `new` bytes in a single
    /// delta-sized operation — how a store retires an epoch: the global
    /// tally moves by the difference and never transits through zero, so a
    /// concurrent enforcement pass can't observe the field as momentarily
    /// free (a discharge+charge pair would allow exactly that window).
    pub fn swap_charge(&self, old: u64, new: u64) {
        if new >= old {
            self.charge(new - old);
        } else {
            self.discharge(old - new);
        }
    }

    /// Bytes currently held across both RAM tiers (decoded + compressed).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed) + self.tier_bytes()
    }

    /// High-water mark of [`StoreBudget::resident_bytes`].
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// True when the decoded tier exceeds its share of the budget.
    pub fn over_decoded_limit(&self) -> bool {
        self.limit > 0 && self.resident.load(Ordering::Relaxed) > self.decoded_limit
    }

    /// Bytes the decoded tier must shed to get back under its ceiling.
    pub fn decoded_overage(&self) -> u64 {
        if self.limit == 0 {
            return 0;
        }
        self.resident
            .load(Ordering::Relaxed)
            .saturating_sub(self.decoded_limit)
    }

    /// Looks up a compressed fragment in the RAM tier.
    pub fn tier_get(&self, key: &TierKey) -> Option<Arc<Vec<u8>>> {
        self.fragments.as_ref()?.get(key)
    }

    /// Offers a compressed fragment to the RAM tier (no-op when
    /// unbounded — there is nothing to rehydrate from it then).
    pub fn tier_put(&self, key: TierKey, payload: Arc<Vec<u8>>) {
        if let Some(tier) = &self.fragments {
            tier.insert(key, payload);
        }
    }

    fn tier_bytes(&self) -> u64 {
        self.fragments
            .as_ref()
            .map_or(0, |t| t.stats().bytes as u64)
    }
}

impl std::fmt::Debug for StoreBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreBudget")
            .field("limit", &self.limit)
            .field("resident", &self.resident_bytes())
            .field("peak", &self.peak_resident_bytes())
            .finish()
    }
}

/// One resident field offered to [`plan_evictions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionCandidate {
    /// Field index within its store.
    pub field: usize,
    /// Recency tick of the last request that touched the field (higher =
    /// hotter).
    pub last_tick: u64,
    /// Exact bytes a rehydration of this field would move (the
    /// metadata-only restore-plan cost: directory lengths of the fragments
    /// the replay fetches).
    pub rehydration_cost: u64,
    /// Decoded bytes demoting the field releases.
    pub resident_bytes: u64,
}

/// Cost-aware LRU: picks fields to demote until at least `need` bytes are
/// released. The coldest half of the candidates (by recency tick) is
/// considered first, ordered by exact rehydration cost — so among the
/// fields nobody touched recently, the ones cheapest to bring back go
/// first — then, only if that half cannot cover the need, the warmer half
/// in the same cost order. Pure function: unit-testable without a store.
pub fn plan_evictions(mut candidates: Vec<EvictionCandidate>, need: u64) -> Vec<usize> {
    if need == 0 || candidates.is_empty() {
        return Vec::new();
    }
    candidates.sort_by_key(|c| c.last_tick);
    let split = (candidates.len() / 2).max(1);
    let mut warm = candidates.split_off(split);
    let mut cold = candidates;
    cold.sort_by_key(|c| (c.rehydration_cost, c.last_tick));
    warm.sort_by_key(|c| (c.rehydration_cost, c.last_tick));
    let mut out = Vec::new();
    let mut relieved = 0u64;
    for c in cold.into_iter().chain(warm) {
        if relieved >= need {
            break;
        }
        relieved += c.resident_bytes;
        out.push(c.field);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(field: usize, tick: u64, cost: u64, bytes: u64) -> EvictionCandidate {
        EvictionCandidate {
            field,
            last_tick: tick,
            rehydration_cost: cost,
            resident_bytes: bytes,
        }
    }

    #[test]
    fn parses_budget_suffixes() {
        assert_eq!(parse_budget("0").unwrap(), 0);
        assert_eq!(parse_budget("123").unwrap(), 123);
        assert_eq!(parse_budget("8k").unwrap(), 8 << 10);
        assert_eq!(parse_budget("2M").unwrap(), 2 << 20);
        assert_eq!(parse_budget(" 3g ").unwrap(), 3 << 30);
        assert!(parse_budget("").is_err());
        assert!(parse_budget("k").is_err());
        assert!(parse_budget("8q").is_err());
        assert!(parse_budget("-1").is_err());
        assert!(parse_budget("99999999999999999999g").is_err());
    }

    #[test]
    fn unbounded_budget_tracks_but_never_trips() {
        let b = StoreBudget::unbounded();
        b.charge(1 << 40);
        assert!(!b.over_decoded_limit());
        assert_eq!(b.decoded_overage(), 0);
        assert_eq!(b.resident_bytes(), 1 << 40);
        assert_eq!(b.peak_resident_bytes(), 1 << 40);
        // no fragment tier when unbounded
        b.tier_put((0, 0, 0), Arc::new(vec![1, 2, 3]));
        assert!(b.tier_get(&(0, 0, 0)).is_none());
    }

    #[test]
    fn bounded_budget_trips_and_recovers() {
        let b = StoreBudget::with_limit(1000);
        assert_eq!(b.limit_bytes(), 1000);
        b.charge(700);
        assert!(!b.over_decoded_limit(), "decoded ceiling is 750");
        b.charge(100);
        assert!(b.over_decoded_limit());
        assert_eq!(b.decoded_overage(), 50);
        b.discharge(100);
        assert!(!b.over_decoded_limit());
        // peak remembers the high-water mark
        assert!(b.peak_resident_bytes() >= 800);
    }

    #[test]
    fn fragment_tier_serves_and_respects_its_cap() {
        let b = StoreBudget::with_limit(4000); // tier cap = 1000
        let payload = Arc::new(vec![7u8; 400]);
        b.tier_put((1, 2, 3), Arc::clone(&payload));
        assert_eq!(b.tier_get(&(1, 2, 3)).unwrap(), payload);
        // overflow the tier: oldest entries are evicted, bytes stay capped
        for i in 0..8u32 {
            b.tier_put((1, 2, 100 + i), Arc::new(vec![0u8; 400]));
        }
        assert!(b.resident_bytes() <= 1000);
        assert!(
            b.tier_get(&(1, 2, 3)).is_none(),
            "displaced by newer entries"
        );
    }

    #[test]
    fn eviction_prefers_cold_then_cheap() {
        // fields 1 and 2 are coldest; 2 rehydrates cheaper than 1
        let cands = vec![
            cand(0, 90, 10, 100),
            cand(1, 5, 500, 100),
            cand(2, 10, 50, 100),
            cand(3, 80, 5, 100),
        ];
        assert_eq!(plan_evictions(cands.clone(), 100), vec![2]);
        assert_eq!(plan_evictions(cands.clone(), 200), vec![2, 1]);
        // need beyond the cold half spills into the warm half, cheap first
        assert_eq!(plan_evictions(cands, 300), vec![2, 1, 3]);
    }

    #[test]
    fn eviction_edge_cases() {
        assert!(plan_evictions(Vec::new(), 10).is_empty());
        assert!(plan_evictions(vec![cand(0, 1, 1, 100)], 0).is_empty());
        // a single candidate is always in the cold pool
        assert_eq!(plan_evictions(vec![cand(7, 99, 1, 10)], 1000), vec![7]);
    }
}
