//! # pqr-progressive — progressive representations + QoI-preserving retrieval
//!
//! This crate is the paper's primary contribution: a generic framework that
//! retrieves *just enough* progressive data to guarantee user-prescribed
//! error tolerances on derivable quantities of interest (§III, §V).
//!
//! ## Pieces
//!
//! * [`field`] — named fields and multi-field datasets with refactor-time
//!   metadata (value ranges, QoI ranges).
//! * [`refactored`] — the three §V-B progressive representations behind one
//!   interface:
//!   [`Scheme::Psz3`] (multi-snapshot error-bounded compression),
//!   [`Scheme::Psz3Delta`] (residual/delta compression),
//!   [`Scheme::PmgardHb`] / [`Scheme::PmgardOb`] (multilevel + bitplanes),
//!   plus the [`Scheme::Pzfp`] extension (ZFP-style block transform +
//!   negabinary bitplanes — the paper's other progressive-precision family).
//! * [`mask`] — the zero-outlier bitmap of §V-A that keeps near-zero points
//!   from blowing up √-type QoI estimates.
//! * [`fragstore`] — fragment-addressed storage: archives serialize as a
//!   manifest + directory + independently addressable fragments, and every
//!   retrieval path pulls bytes through the [`fragstore::FragmentSource`]
//!   trait (resident, in-memory, file-backed byte ranges, LRU-cached), so
//!   partial retrieval is partial in bytes *read*, not just bytes counted.
//! * [`engine`] — Algorithms 2–4: iterative QoI-preserved retrieval with a
//!   primary-data error-bound assigner and a QoI error estimator.
//! * [`store`] — the shared-state service layer's cross-request decode
//!   cache: one master reader per field behind a `RwLock`, advanced
//!   monotonically, so concurrent sessions ([`FieldReader::open_shared`]
//!   views sharing one [`store::ProgressStore`]) decode every bitplane
//!   exactly once and serve looser requests without touching the source.
//! * [`pager`] — the bounded-memory tier manager behind the store: decoded
//!   state is charged against a global [`StoreBudget`]; over budget, cold
//!   fields demote to their [`ReaderProgress`] marker (backed by a
//!   compressed-fragment RAM tier, then the source) and rehydrate
//!   bit-identically on demand by replaying the exact restore plan.
//! * [`plan`] — the plan/execute pipeline over the engine: multi-QoI
//!   requests resolve into a deduplicated, source-ordered fragment
//!   schedule (shared fields scheduled once) that executes through
//!   [`fragstore::FragmentSource::read_many`] with per-target
//!   certification, byte budgets and shared-fragment accounting.
//!
//! ## Flow (mirrors Fig. 1)
//!
//! ```
//! use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
//! use pqr_progressive::field::Dataset;
//! use pqr_progressive::refactored::Scheme;
//! use pqr_qoi::library::velocity_magnitude;
//!
//! // archive side: refactor three velocity fields
//! let n = 512;
//! let fields: Vec<Vec<f64>> = (0..3)
//!     .map(|c| (0..n).map(|i| ((i + c * 37) as f64 * 0.01).sin() + 1.5).collect())
//!     .collect();
//! let names = ["Vx", "Vy", "Vz"];
//! let mut ds = Dataset::new(&[n]);
//! for (name, f) in names.iter().zip(&fields) {
//!     ds.add_field(name, f.clone()).unwrap();
//! }
//! let archive = ds.refactor(Scheme::PmgardHb).unwrap();
//!
//! // retrieval side: VTOT within 1e-4 of truth, guaranteed
//! let qoi = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, &ds).unwrap();
//! let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
//! let report = engine.retrieve(&[qoi]).unwrap();
//! assert!(report.satisfied);
//!
//! // the guarantee: estimated ≥ actual error, estimated ≤ tolerance
//! let recon = engine.reconstruction(0);
//! assert_eq!(recon.len(), n);
//! ```

pub mod engine;
pub mod field;
pub mod fragstore;
pub mod mask;
pub mod pager;
pub mod plan;
pub mod refactored;
pub mod store;

pub use engine::{EngineConfig, QoiSpec, RetrievalEngine, RetrievalReport};
pub use field::{Dataset, RefactoredDataset};
pub use fragstore::{
    CachedSource, FileSource, FragmentCache, FragmentId, FragmentSource, FragmentStage,
    InMemorySource, Manifest, SourceStats,
};
pub use mask::ZeroMask;
pub use pager::{parse_budget, StoreBudget};
pub use plan::{PlanExecutor, PlanReport, RetrievalPlan, TargetReport};
pub use refactored::{FieldReader, ReaderProgress, RefactoredField, Scheme};
pub use store::{FieldSnapshot, ProgressStore, StoreStats};
