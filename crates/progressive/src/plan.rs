//! Plan/execute retrieval: batched multi-QoI requests with fragment dedup
//! and coalesced I/O.
//!
//! The paper's Algorithms 1–4 refine *per QoI request*; real analyses ask
//! for several derivable QoIs at once, and QoIs that share underlying
//! fields should not schedule the same fragments twice. This module splits
//! the opaque request-and-fetch step into three inspectable stages:
//!
//! 1. **Resolve** — [`RetrievalPlan::resolve`] turns `(QoI, tolerance)`
//!    targets into a plan against the archive manifest: which fields each
//!    target derives from, the Algorithm-3 initial per-field bounds (one
//!    bound per field — the *min* over the targets reading it, which is
//!    where cross-target fragment **dedup** happens), and the first
//!    round's deduplicated, source-ordered fragment schedule.
//! 2. **Execute** — [`PlanExecutor`] drives the schedule through
//!    [`FragmentSource::read_many`]: each refine→estimate→tighten round
//!    first *plans* every involved field's refinement front from metadata
//!    alone (the §V bound models are functions of consumed-fragment
//!    counts, never payload contents, so the prediction is exact), batches
//!    the round in storage order — files coalesce adjacent ranges into
//!    single reads, remote stores serve the batch in one round-trip — and
//!    only then lets the readers consume. After each round the §IV error
//!    bounds are re-evaluated and each target stops influencing further
//!    tightening as soon as its tolerance certifies.
//! 3. **Report** — [`PlanReport`] carries per-target outcomes
//!    ([`TargetReport`]: satisfied/bound/bytes), the shared-fragment
//!    savings, and backend read-op counts, plus the aggregate fields the
//!    legacy [`RetrievalReport`] exposed.
//!
//! [`RetrievalEngine::retrieve`] is a thin wrapper over this pipeline, so
//! single-target legacy requests, resumed sessions and batched multi-QoI
//! plans all move bytes through exactly one fetch code path.
//!
//! [`RetrievalReport`]: crate::engine::RetrievalReport
//! [`RetrievalEngine::retrieve`]: crate::engine::RetrievalEngine::retrieve
//! [`FragmentSource::read_many`]: crate::fragstore::FragmentSource::read_many

use crate::engine::{QoiSpec, RetrievalEngine, RetrievalReport};
use crate::fragstore::{FragmentId, SourceStats};
use pqr_util::error::{PqrError, Result};

/// A resolved multi-target retrieval plan: the targets, the fields they
/// derive from, the Algorithm-3 initial bounds, and the first round's
/// deduplicated source-ordered fragment schedule. Resolution is pure
/// planning — no payload fragment is fetched.
#[derive(Debug, Clone)]
pub struct RetrievalPlan {
    specs: Vec<QoiSpec>,
    /// Field indices each target's expression reads.
    involved: Vec<Vec<usize>>,
    /// Algorithm-3 initial per-field bounds (∞ = field unused, never
    /// fetched), already clamped to what the engine has achieved.
    initial_bounds: Vec<f64>,
    /// Round-1 fragment schedule: deduplicated across targets (shared
    /// fields appear once, at their tightest requirement) and sorted by
    /// storage offset for maximal coalescing.
    schedule: Vec<FragmentId>,
    /// Directory bytes the round-1 schedule will move.
    scheduled_bytes: usize,
    /// Optional ceiling on newly fetched bytes (round-granular: execution
    /// stops scheduling further rounds once exceeded).
    byte_budget: Option<usize>,
    /// `engine.total_fetched()` at resolve time — lets the executor reuse
    /// the round-1 schedule only when the engine has not advanced since.
    resolved_at_fetched: usize,
}

impl RetrievalPlan {
    /// Resolves `specs` against the engine's manifest and current reader
    /// state. Validates every target (arity, tolerance positivity, region
    /// bounds) up front — execution cannot fail validation later.
    pub fn resolve(
        engine: &RetrievalEngine,
        specs: Vec<QoiSpec>,
        byte_budget: Option<usize>,
    ) -> Result<Self> {
        let manifest = engine.manifest();
        let nv = manifest.num_fields();
        for q in &specs {
            if q.expr.arity() > nv {
                return Err(PqrError::ShapeMismatch(format!(
                    "QoI '{}' reads variable {} but archive has {nv} fields",
                    q.name,
                    q.expr.arity() - 1
                )));
            }
            // NaN-safe positivity check (NaN fails the comparison)
            let tol = q.tol_abs();
            if !(tol.is_finite() && tol > 0.0) {
                return Err(PqrError::InvalidRequest(format!(
                    "QoI '{}' has non-positive tolerance",
                    q.name
                )));
            }
            if let Some((lo, hi)) = q.region {
                let ne = manifest.num_elements();
                if lo > hi || hi > ne {
                    return Err(PqrError::InvalidRequest(format!(
                        "QoI '{}' region {lo}..{hi} out of bounds (0..{ne})",
                        q.name
                    )));
                }
            }
        }
        let involved: Vec<Vec<usize>> = specs
            .iter()
            .map(|q| q.expr.variables().into_iter().collect())
            .collect();

        // Algorithm 3: each field starts at range · min(1, min τ_rel over
        // the targets that read it) — the per-field *min* is what
        // deduplicates shared fields across targets.
        let mut initial_bounds: Vec<f64> = (0..nv)
            .map(|j| {
                let mut rel = f64::INFINITY;
                for (q, vars) in specs.iter().zip(&involved) {
                    if vars.contains(&j) {
                        rel = rel.min(q.tol_rel.min(1.0));
                    }
                }
                if rel.is_finite() {
                    rel * manifest.fields[j].range
                } else {
                    f64::INFINITY // field unused by any target: never fetched
                }
            })
            .collect();
        // never loosen bounds below what previous calls already achieved
        for (j, b) in initial_bounds.iter_mut().enumerate() {
            *b = b.min(engine.readers()[j].guaranteed_bound());
        }

        let (schedule, scheduled_bytes) = round_schedule(engine, &initial_bounds)?;
        Ok(Self {
            specs,
            involved,
            initial_bounds,
            schedule,
            scheduled_bytes,
            byte_budget,
            resolved_at_fetched: engine.total_fetched(),
        })
    }

    /// The resolved targets, in request order.
    pub fn targets(&self) -> &[QoiSpec] {
        &self.specs
    }

    /// Field indices target `k` derives from.
    pub fn involved_fields(&self, k: usize) -> &[usize] {
        &self.involved[k]
    }

    /// Fields read by more than one target — where batched execution saves
    /// rereads relative to independent per-target requests.
    pub fn shared_fields(&self) -> Vec<usize> {
        let nv = self.initial_bounds.len();
        (0..nv)
            .filter(|j| self.involved.iter().filter(|vars| vars.contains(j)).count() >= 2)
            .collect()
    }

    /// The first round's deduplicated, source-ordered fragment schedule.
    pub fn schedule(&self) -> &[FragmentId] {
        &self.schedule
    }

    /// Directory bytes the first round will move.
    pub fn scheduled_bytes(&self) -> usize {
        self.scheduled_bytes
    }

    /// The byte budget, if any.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }
}

/// The per-field refinement fronts at the given requested bounds, merged
/// into one deduplicated schedule sorted by storage offset (with the
/// directory bytes it will move).
fn round_schedule(engine: &RetrievalEngine, requested: &[f64]) -> Result<(Vec<FragmentId>, usize)> {
    let mut ids = Vec::new();
    for (j, &eb) in requested.iter().enumerate() {
        if eb.is_finite() {
            ids.extend(
                engine.readers()[j]
                    .plan_refine_to(eb)
                    .into_iter()
                    .map(|index| FragmentId {
                        field: j as u32,
                        index,
                    }),
            );
        }
    }
    engine.source_order(&mut ids);
    let mut bytes = 0usize;
    for &id in &ids {
        bytes += engine.manifest().fragment(id)?.len as usize;
    }
    Ok((ids, bytes))
}

/// Outcome of one target of an executed plan.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// The target's display name.
    pub name: String,
    /// Whether the estimated error met the tolerance.
    pub satisfied: bool,
    /// The absolute tolerance the target demanded.
    pub tol_abs: f64,
    /// Max estimated QoI error after the final refinement (the certified
    /// bound when `satisfied`).
    pub max_est_error: f64,
    /// Newly fetched payload bytes attributed to this target: the sum of
    /// its involved fields' newly fetched bytes. Targets sharing a field
    /// each count its bytes once — the overlap is exactly what
    /// [`PlanReport::shared_bytes_saved`] tallies.
    pub bytes: usize,
    /// Field indices the target derives from.
    pub fields: Vec<usize>,
}

/// Outcome of [`PlanExecutor::execute`]: per-target results plus the
/// aggregate accounting of the batched execution.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Per-target outcomes, in request order.
    pub targets: Vec<TargetReport>,
    /// Whether every target's tolerance was met.
    pub satisfied: bool,
    /// Outer refine→estimate→tighten rounds used.
    pub iterations: usize,
    /// Bytes newly fetched by this execution.
    pub bytes_fetched: usize,
    /// Cumulative bytes fetched by the engine (including metadata).
    pub total_fetched: usize,
    /// Achieved primary-data L∞ bound per field.
    pub field_bounds: Vec<f64>,
    /// Bitrate: cumulative fetched bits per element over all fields.
    pub bitrate: f64,
    /// Bytes batched execution saved versus fetching each target's
    /// involved fields independently: Σ per-target bytes − actual bytes.
    /// Zero when no target shares a field with another.
    pub shared_bytes_saved: usize,
    /// True when execution stopped because the byte budget ran out with
    /// tolerances still unmet.
    pub budget_exhausted: bool,
    /// Backend read operations during execution (coalesced range reads /
    /// batch round-trips), from the source's [`SourceStats`] delta; zero
    /// for resident sources, which do not track memory copies.
    pub read_ops: u64,
    /// Fragments served during execution (same source delta).
    pub fragments_read: u64,
    /// Milliseconds of fragment I/O the overlapped prefetcher hid behind
    /// concurrent decode during this execution (see
    /// [`SourceStats::overlap_saved_ms`]). Zero when overlap was off, the
    /// rounds were too small to overlap, or the source is resident.
    pub overlap_saved_ms: u64,
    /// Milliseconds this request waited for admission before execution
    /// began. Always zero for in-process execution; the serving layer
    /// (`pqr-serve`) fills it with the decode-permit queue wait so remote
    /// clients can see contention separately from retrieval work.
    pub queue_wait_ms: u64,
    /// Fragments the shared [`ProgressStore`](crate::store::ProgressStore)
    /// decoded *during this execution* (store-level delta). Zero for
    /// engines without a store. Under concurrent sessions the delta
    /// includes decodes triggered by other sessions in the window.
    pub store_fragments_decoded: u64,
    /// Store refinement requests served entirely from already-decoded
    /// state during this execution (same delta caveat). Zero without a
    /// store.
    pub store_refine_reuses: u64,
    /// Refinement schedules the store's plan-front cache served as a
    /// prefix of a cached front during this execution (same store-level
    /// delta caveat). Zero without a store.
    pub plan_front_hits: u64,
    /// Refinement schedules the store recomputed from the bound model
    /// during this execution (same delta caveat). Zero without a store.
    pub plan_front_misses: u64,
    /// Multilevel recompose axis passes run rebuilding reconstructions
    /// during this execution — the engine's own readers plus the shared
    /// store's masters (store-level delta, same caveat).
    pub recompose_passes: u64,
    /// Refinement rounds answered from a memoized reconstruction during
    /// this execution (engine readers + store masters): zero decodes,
    /// zero recompose passes.
    pub recon_cache_hits: u64,
    /// Milliseconds spent rebuilding reconstructions during this
    /// execution (engine readers + store masters).
    pub reconstruct_ms: u64,
}

impl PlanReport {
    /// The aggregate view the legacy single-call API returns: per-target
    /// max estimated errors in request order, plus the engine-level
    /// accounting.
    pub fn as_legacy(&self) -> RetrievalReport {
        RetrievalReport {
            satisfied: self.satisfied,
            iterations: self.iterations,
            bytes_fetched: self.bytes_fetched,
            total_fetched: self.total_fetched,
            max_est_errors: self.targets.iter().map(|t| t.max_est_error).collect(),
            field_bounds: self.field_bounds.clone(),
            bitrate: self.bitrate,
        }
    }
}

/// Drives a [`RetrievalPlan`] through the engine: batched prefetch per
/// round, §IV re-evaluation after every round, per-target certification,
/// Algorithm-4 tightening for the still-unmet targets, and the optional
/// byte budget.
pub struct PlanExecutor<'e> {
    engine: &'e mut RetrievalEngine,
}

impl<'e> PlanExecutor<'e> {
    /// An executor over `engine` (which persists across executions, so
    /// plans retrieve incrementally like legacy request series).
    pub fn new(engine: &'e mut RetrievalEngine) -> Self {
        Self { engine }
    }

    /// Executes the plan to completion: every target certified, the
    /// representations exhausted, the iteration cap hit, or the byte
    /// budget consumed — whichever comes first.
    pub fn execute(self, plan: &RetrievalPlan) -> Result<PlanReport> {
        let engine = self.engine;
        let qois = &plan.specs;
        let involved = &plan.involved;
        let fetched_before = engine.total_fetched();
        let per_field_before: Vec<usize> =
            engine.readers().iter().map(|r| r.total_fetched()).collect();
        let stats_before = engine.source_stats();
        let store_before = engine.shared_store().map(|s| s.stats());
        let recompose_before = engine.recompose_passes();
        let recon_hits_before = engine.recon_cache_hits();
        let recon_nanos_before = engine.reconstruct_nanos();

        // the plan's Algorithm-3 bounds, re-clamped in case the engine
        // advanced between resolve and execute
        let mut requested = plan.initial_bounds.clone();
        for (j, b) in requested.iter_mut().enumerate() {
            *b = b.min(engine.readers()[j].guaranteed_bound());
        }

        let tol_abs: Vec<f64> = qois.iter().map(|q| q.tol_abs()).collect();
        let mut max_est = vec![f64::INFINITY; qois.len()];
        let mut iterations = 0usize;
        let mut budget_exhausted = false;
        let (satisfied, field_bounds) = loop {
            iterations += 1;
            // batch the round's fragment schedule through read_many —
            // overlapping the chunked I/O with decode and fanning the
            // independent per-field cursors across decode workers (see
            // `RetrievalEngine::refine_round`); the per-fragment path stays
            // available as the fallback and the `batch_io: false` arm.
            // Alg. 2 line 10 (progressive_construct each involved field)
            // happens inside the round.
            if engine.config().batch_io {
                // round 1 reuses the schedule resolve() already computed,
                // unless the engine advanced in between (then some of that
                // schedule may already be consumed and must be re-planned)
                let replanned;
                let ids: &[FragmentId] =
                    if iterations == 1 && fetched_before == plan.resolved_at_fetched {
                        &plan.schedule
                    } else {
                        replanned = round_schedule(engine, &requested)?.0;
                        &replanned
                    };
                engine.refine_round(&requested, Some(ids))?;
            } else {
                engine.refine_round(&requested, None)?;
            }
            // Alg. 2 lines 13–24: estimate QoI errors everywhere.
            let achieved: Vec<f64> = engine
                .readers()
                .iter()
                .map(|r| r.guaranteed_bound())
                .collect();
            let scans = engine.scan_qois(qois, &achieved);
            let mut all_met = true;
            for (k, &(est, _)) in scans.iter().enumerate() {
                max_est[k] = est;
                if est > tol_abs[k] {
                    all_met = false;
                }
            }
            if all_met || iterations >= engine.config().max_iterations {
                break (all_met, achieved);
            }
            if let Some(budget) = plan.byte_budget {
                if engine.total_fetched() - fetched_before >= budget {
                    budget_exhausted = true;
                    break (false, achieved);
                }
            }

            // Algorithm 4: tighten bounds at the worst point of each target
            // that has not certified yet — certified targets stop here.
            // The estimator scratch is hoisted out of the tightening loop:
            // one allocation pair per round, not per candidate bound vector.
            let mut progress = false;
            let nv = engine.manifest().num_fields();
            let (mut x_scratch, mut eps_scratch) = (vec![0.0f64; nv], vec![0.0f64; nv]);
            for (k, &(est, argmax)) in scans.iter().enumerate() {
                if est <= tol_abs[k] {
                    continue;
                }
                let mut eps_local = achieved.clone();
                let mut tightenings = 0usize;
                while engine.point_estimate_scratch(
                    &qois[k].expr,
                    argmax,
                    &eps_local,
                    &mut x_scratch,
                    &mut eps_scratch,
                ) > tol_abs[k]
                    && tightenings < engine.config().max_tightenings
                {
                    for &i in &involved[k] {
                        eps_local[i] /= engine.config().reduction_factor;
                    }
                    tightenings += 1;
                }
                for &i in &involved[k] {
                    if eps_local[i] < requested[i] {
                        requested[i] = eps_local[i];
                        if !engine.readers()[i].exhausted() {
                            progress = true;
                        }
                    }
                }
            }
            if !progress {
                // exhausted representations and still unmet — Alg. 2's
                // "full fidelity retrieved" exit
                break (false, achieved);
            }
        };

        let total = engine.total_fetched();
        let per_field_delta: Vec<usize> = engine
            .readers()
            .iter()
            .zip(&per_field_before)
            .map(|(r, &before)| r.total_fetched() - before)
            .collect();
        let targets: Vec<TargetReport> = qois
            .iter()
            .enumerate()
            .map(|(k, q)| TargetReport {
                name: q.name.clone(),
                satisfied: max_est[k] <= tol_abs[k],
                tol_abs: tol_abs[k],
                max_est_error: max_est[k],
                bytes: involved[k].iter().map(|&j| per_field_delta[j]).sum(),
                fields: involved[k].clone(),
            })
            .collect();
        let attributed: usize = targets.iter().map(|t| t.bytes).sum();
        let actual_payload: usize = per_field_delta.iter().sum();
        let stats_after = engine.source_stats();
        let store_after = engine.shared_store().map(|s| s.stats());
        let (store_decoded, store_reuses, front_hits, front_misses) =
            match (store_before, store_after) {
                (Some(b), Some(a)) => (
                    a.fragments_decoded.saturating_sub(b.fragments_decoded),
                    a.refine_reuses.saturating_sub(b.refine_reuses),
                    a.plan_front_hits.saturating_sub(b.plan_front_hits),
                    a.plan_front_misses.saturating_sub(b.plan_front_misses),
                ),
                _ => (0, 0, 0, 0),
            };
        // reconstruction work: the engine's own readers plus the shared
        // store's masters (store-level delta — concurrent sessions in the
        // window contribute, same caveat as the decode counters)
        let (store_passes, store_hits, store_nanos) = match (store_before, store_after) {
            (Some(b), Some(a)) => (
                a.recompose_passes.saturating_sub(b.recompose_passes),
                a.recon_cache_hits.saturating_sub(b.recon_cache_hits),
                a.reconstruct_nanos.saturating_sub(b.reconstruct_nanos),
            ),
            _ => (0, 0, 0),
        };
        let recompose_passes = engine.recompose_passes() - recompose_before + store_passes;
        let recon_cache_hits = engine.recon_cache_hits() - recon_hits_before + store_hits;
        let reconstruct_ms =
            (engine.reconstruct_nanos() - recon_nanos_before + store_nanos) / 1_000_000;
        let elements = engine.manifest().num_elements() * engine.manifest().num_fields();
        Ok(PlanReport {
            satisfied,
            iterations,
            bytes_fetched: total - fetched_before,
            total_fetched: total,
            field_bounds,
            bitrate: pqr_util::stats::bitrate(total, elements),
            shared_bytes_saved: attributed.saturating_sub(actual_payload),
            budget_exhausted,
            read_ops: delta(stats_after, stats_before, |s| s.read_ops),
            fragments_read: delta(stats_after, stats_before, |s| s.fetches),
            overlap_saved_ms: delta(stats_after, stats_before, |s| s.overlap_saved_ms),
            queue_wait_ms: 0,
            store_fragments_decoded: store_decoded,
            store_refine_reuses: store_reuses,
            plan_front_hits: front_hits,
            plan_front_misses: front_misses,
            recompose_passes,
            recon_cache_hits,
            reconstruct_ms,
            targets,
        })
    }
}

fn delta(after: SourceStats, before: SourceStats, f: impl Fn(&SourceStats) -> u64) -> u64 {
    f(&after).saturating_sub(f(&before))
}

// (tests exercising the plan path live in `engine`'s suite — every legacy
// `retrieve` now runs through the executor — plus the dedicated multi-QoI
// integration and property suites at the workspace root and in `pqr-core`.)
