//! QoI-preserved data retrieval — Algorithms 2, 3 and 4 of the paper.
//!
//! The engine owns one progressive reader per field and iterates:
//!
//! 1. **Refine** every involved field to its currently requested
//!    primary-data bound (`progressive_construct`, Alg. 2 line 10).
//! 2. **Estimate** the QoI error at every point from the reconstructed
//!    values and the *achieved* bounds, using the §IV calculus
//!    (Alg. 2 lines 13–24); record the max and its location.
//! 3. If some tolerance is exceeded, **tighten** the bounds of the involved
//!    fields by the factor `c` until the estimate *at the worst point*
//!    passes (Alg. 4 / `reassign_eb`), then go to 1.
//!
//! The initial bounds come from `assign_eb` (Alg. 3): each field starts at
//! `range · min(1, min τ_rel over the QoIs that read it)`.
//!
//! Masked points (§V-A) are certified exact zeros on the masked fields:
//! the estimator pins `x = 0, ε = 0` there, which is what keeps √-type QoIs
//! boundable (see [`crate::mask`]).
//!
//! Termination: every tightening divides at least one requested bound by
//! `c > 1`; readers are exhausted after finitely many fetches, and once
//! every involved reader is exhausted with tolerances still unmet the
//! engine returns `satisfied = false` ("full-fidelity representation has
//! been retrieved", Alg. 2's other exit).
//!
//! The refine→estimate→tighten loop itself lives in [`crate::plan`]:
//! [`RetrievalEngine::retrieve`] resolves its specs into a
//! [`crate::plan::RetrievalPlan`] and runs the
//! [`crate::plan::PlanExecutor`], which batches each round's fragment
//! schedule through [`FragmentSource::read_many`] before the readers
//! consume it — single-target requests, multi-QoI plans and resumed
//! sessions share exactly one fetch code path.

// The point-scan loops index several parallel arrays (recons, eps, x) by
// the same point/field index; iterator zips would obscure the correspondence
// with the paper's pseudocode.
#![allow(clippy::needless_range_loop)]

use crate::field::{Dataset, RefactoredDataset};
use crate::fragstore::{FragmentId, FragmentSource, FragmentStage, Manifest, SourceStats};
use crate::refactored::FieldReader;
use pqr_qoi::{BoundConfig, QoiExpr};
use pqr_util::error::{PqrError, Result};
use pqr_util::par::{par_chunk_fill, par_chunk_reduce};
use std::sync::Arc;

/// A requested QoI with its tolerance.
#[derive(Debug, Clone)]
pub struct QoiSpec {
    /// Display name (used in reports and the figure harnesses).
    pub name: String,
    /// The derivable QoI expression over the dataset's field indices.
    pub expr: QoiExpr,
    /// Relative tolerance τ (fraction of the QoI value range).
    pub tol_rel: f64,
    /// QoI value range (refactor-time metadata; 0 ⇒ treat τ as absolute).
    pub range: f64,
    /// Optional half-open index range the tolerance applies to (region of
    /// interest). `None` = the whole domain. Fragments remain global — the
    /// representations stream whole-field segments — but the *error-control
    /// scope* shrinks to the region, so fewer segments satisfy the request.
    pub region: Option<(usize, usize)>,
}

impl QoiSpec {
    /// Builds a spec with a relative tolerance, computing the QoI range from
    /// the original dataset (archive side — Fig. 1's refactor-time metadata).
    pub fn relative(name: &str, expr: QoiExpr, tol_rel: f64, ds: &Dataset) -> Result<Self> {
        let range = ds.qoi_range(&expr)?;
        Ok(Self {
            name: name.to_string(),
            expr,
            tol_rel,
            range,
            region: None,
        })
    }

    /// Builds a spec from a known QoI range (retrieval side, range comes
    /// from stored metadata).
    pub fn with_range(name: &str, expr: QoiExpr, tol_rel: f64, range: f64) -> Self {
        Self {
            name: name.to_string(),
            expr,
            tol_rel,
            range,
            region: None,
        }
    }

    /// Builds a spec with an absolute tolerance.
    pub fn absolute(name: &str, expr: QoiExpr, tol_abs: f64) -> Self {
        Self {
            name: name.to_string(),
            expr,
            tol_rel: tol_abs,
            range: 0.0,
            region: None,
        }
    }

    /// Restricts the tolerance to the half-open linearized index range
    /// `lo..hi` — region-of-interest error control (an extension in the
    /// direction of the paper's related work on RoI-preserving compression).
    /// Points outside the region carry no error constraint from this spec.
    pub fn restrict_to(mut self, lo: usize, hi: usize) -> Self {
        self.region = Some((lo, hi));
        self
    }

    /// The absolute tolerance this spec demands.
    pub fn tol_abs(&self) -> f64 {
        if self.range > 0.0 {
            self.tol_rel * self.range
        } else {
            self.tol_rel
        }
    }

    /// A copy with a different relative tolerance (for progressive request
    /// series).
    pub fn at_tolerance(&self, tol_rel: f64) -> Self {
        Self {
            tol_rel,
            ..self.clone()
        }
    }
}

/// Engine knobs. Defaults mirror the paper's implementation choices.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Bound-reduction factor `c` of Algorithm 4 (paper: 1.5).
    pub reduction_factor: f64,
    /// Cap on outer refine→estimate iterations.
    pub max_iterations: usize,
    /// Cap on per-QoI tightenings inside one reassign (guards the
    /// `∞`-estimate spiral that the mask is designed to prevent).
    pub max_tightenings: usize,
    /// QoI bound evaluation options (√ estimator variant, float guard).
    pub bound_config: BoundConfig,
    /// Parallelise the per-point QoI scans. Disable when the caller already
    /// parallelises at a coarser granularity (e.g. the per-block transfer
    /// pipeline) — nested thread pools oversubscribe and distort timings.
    pub parallel_scan: bool,
    /// Batch each refinement round's fragment schedule through
    /// [`FragmentSource::read_many`] (coalesced ranges on files, one
    /// round-trip per batch on remote stores) before the readers consume
    /// it. Disable to force the legacy per-fragment fetch path — useful
    /// for I/O comparisons; the bytes moved are identical either way.
    pub batch_io: bool,
    /// Worker-thread budget — the shared knob for per-field decode during
    /// plan execution here and for the encode fan-out on the write path
    /// (`Dataset::refactor_with_workers` takes the same value; the CLI
    /// feeds both from one `--workers` flag). Fields are independent, so
    /// each round's cursor advancement fans out through
    /// `pqr_util::par::par_dynamic`-style dispatch. `0` (the default)
    /// resolves to [`pqr_util::par::worker_count`] (the `PQR_THREADS`
    /// knob); `1` runs the exact sequential field order, bit-identical to
    /// the pre-parallel executor.
    pub workers: usize,
    /// Overlap fragment I/O with decode: a scoped prefetcher thread issues
    /// the round's [`FragmentSource::read_many`] in chunks while the
    /// readers decode payloads that have already landed. Reconstructions,
    /// bounds and byte accounting are identical either way; only backend
    /// read-op tallies differ (a chunked round is several smaller batches).
    /// Disable when the caller already parallelises at a coarser
    /// granularity (e.g. the per-block transfer pipeline).
    pub overlap_io: bool,
    /// Byte budget for shared decoded state when this config builds a
    /// [`ProgressStore`](crate::store::ProgressStore)-backed service:
    /// `Some(0)` = explicitly unbounded, `Some(n)` = cap decoded
    /// snapshots plus master state at `n` bytes (cold fields demote and
    /// rehydrate — see [`crate::pager`]), `None` (the default) = defer
    /// to the `PQR_STORE_BUDGET` environment variable (unset ⇒
    /// unbounded). Engines opened directly (no store) ignore it.
    pub store_budget_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            reduction_factor: 1.5,
            max_iterations: 64,
            max_tightenings: 512,
            bound_config: BoundConfig::default(),
            parallel_scan: true,
            batch_io: true,
            workers: 0,
            overlap_io: true,
            store_budget_bytes: None,
        }
    }
}

/// Rounds below this many scheduled fragments skip the overlapped
/// prefetcher: spawning a thread costs more than the I/O it would hide.
const OVERLAP_MIN_FRAGMENTS: usize = 8;
/// Chunks an overlapped round's schedule is split into — the prefetch
/// pipeline depth (first chunk decodes while the second is in flight).
const OVERLAP_CHUNKS: usize = 4;

/// Clears the stage's promise set when the prefetcher exits — on success,
/// failure or panic — so no decode worker can wait on a payload that will
/// never arrive.
struct RoundGuard<'a>(&'a FragmentStage);

impl Drop for RoundGuard<'_> {
    fn drop(&mut self) {
        self.0.end_round();
    }
}

/// Outcome of a [`RetrievalEngine::retrieve`] call.
#[derive(Debug, Clone)]
pub struct RetrievalReport {
    /// Whether every QoI tolerance was met (estimated error ≤ tolerance).
    pub satisfied: bool,
    /// Outer iterations used.
    pub iterations: usize,
    /// Bytes newly fetched by this call.
    pub bytes_fetched: usize,
    /// Cumulative bytes fetched by the engine (including metadata).
    pub total_fetched: usize,
    /// Max estimated QoI error per spec, after the final refinement.
    pub max_est_errors: Vec<f64>,
    /// Achieved primary-data L∞ bound per field.
    pub field_bounds: Vec<f64>,
    /// Bitrate: cumulative fetched bits per element over all fields.
    pub bitrate: f64,
}

/// The QoI-preserving progressive retrieval engine (Fig. 1's retrieval box).
///
/// Every byte the engine moves is pulled through a
/// [`FragmentSource`] — a resident [`RefactoredDataset`], a serialized
/// in-memory archive, a lazily opened file, or a (simulated) remote store
/// all drive the identical refinement code path. The engine **owns** a
/// shared handle to its source (`Arc`), so engines carry no borrows: they
/// move across threads, outlive the scope that opened them, and many can
/// share one source concurrently (its [`SourceStats`] tally atomically).
///
/// Engines built with [`RetrievalEngine::with_store`] additionally share a
/// [`ProgressStore`](crate::store::ProgressStore): their readers are views
/// onto per-field decode state that advances monotonically across *all*
/// engines on the store, so a request the store already reached performs
/// zero fetches and zero decodes.
pub struct RetrievalEngine {
    source: Arc<dyn FragmentSource>,
    manifest: Manifest,
    readers: Vec<FieldReader>,
    /// Shared prefetch stage: plan execution parks batched payloads here
    /// and the readers' per-fragment consume path drains it.
    stage: Arc<FragmentStage>,
    /// The shared progress store, when this engine was built with one —
    /// retained so plan execution can report store-level decode/reuse
    /// deltas per request.
    store: Option<Arc<crate::store::ProgressStore>>,
    cfg: EngineConfig,
}

impl RetrievalEngine {
    /// Opens readers on every field of a resident archive.
    ///
    /// Legacy convenience wrapper: the dataset is **cloned** behind an
    /// `Arc` so the engine owns its source. Prefer
    /// [`RetrievalEngine::from_source`] with an `Arc` you already hold
    /// (`Arc<RefactoredDataset>` coerces) to share one copy across
    /// engines.
    pub fn new(archive: &RefactoredDataset, cfg: EngineConfig) -> Result<Self> {
        Self::from_source(Arc::new(archive.clone()), cfg)
    }

    /// Opens readers on every field of the archive behind `source`,
    /// fetching only the manifest and the per-field metadata fragments.
    pub fn from_source(source: Arc<dyn FragmentSource>, cfg: EngineConfig) -> Result<Self> {
        let manifest = source.manifest()?;
        Self::build(source, manifest, cfg, None)
    }

    /// Opens an engine whose readers are **views onto a shared
    /// [`ProgressStore`](crate::store::ProgressStore)**: refinement reads
    /// through (and monotonically advances) the store's per-field decode
    /// state instead of fetching and decoding locally. All engines on one
    /// store collectively decode each bitplane exactly once.
    pub fn with_store(store: Arc<crate::store::ProgressStore>, cfg: EngineConfig) -> Result<Self> {
        let source = Arc::clone(store.source());
        let manifest = store.manifest().clone();
        Self::build(source, manifest, cfg, Some(store))
    }

    fn build(
        source: Arc<dyn FragmentSource>,
        manifest: Manifest,
        cfg: EngineConfig,
        store: Option<Arc<crate::store::ProgressStore>>,
    ) -> Result<Self> {
        if cfg.reduction_factor <= 1.0 {
            return Err(PqrError::InvalidRequest(format!(
                "reduction factor must exceed 1, got {}",
                cfg.reduction_factor
            )));
        }
        if let Some(mask) = &manifest.mask {
            if mask.len() != manifest.num_elements() {
                return Err(PqrError::ShapeMismatch(format!(
                    "mask covers {} points, archive has {}",
                    mask.len(),
                    manifest.num_elements()
                )));
            }
        }
        let mut readers = (0..manifest.num_fields())
            .map(|i| match &store {
                Some(store) => FieldReader::open_shared(Arc::clone(store), &manifest, i),
                None => FieldReader::open(Arc::clone(&source), &manifest, i),
            })
            .collect::<Result<Vec<_>>>()?;
        let stage = Arc::new(FragmentStage::new());
        let workers = match cfg.workers {
            0 => pqr_util::par::worker_count(),
            n => n,
        };
        for r in &mut readers {
            r.attach_stage(Arc::clone(&stage));
            r.set_workers(workers);
        }
        Ok(Self {
            source,
            manifest,
            readers,
            stage,
            store,
            cfg,
        })
    }

    /// The fragment source this engine fetches through.
    pub fn source(&self) -> &dyn FragmentSource {
        self.source.as_ref()
    }

    /// A shared handle to the engine's fragment source (for spawning more
    /// engines or querying stats after the engine is gone).
    pub fn shared_source(&self) -> Arc<dyn FragmentSource> {
        Arc::clone(&self.source)
    }

    /// The shared [`ProgressStore`](crate::store::ProgressStore) this
    /// engine refines through, if it was built with
    /// [`RetrievalEngine::with_store`]. Independent engines return `None`.
    pub fn shared_store(&self) -> Option<&Arc<crate::store::ProgressStore>> {
        self.store.as_ref()
    }

    /// Payload fragments this engine's own readers fetched and decoded.
    /// Engines on a shared store report zero — decodes happen once, in the
    /// store (see [`crate::store::StoreStats`]).
    pub fn fragments_decoded(&self) -> u64 {
        self.readers
            .iter()
            .map(FieldReader::fragments_decoded)
            .sum()
    }

    /// Multilevel recompose axis passes this engine's readers performed
    /// rebuilding reconstructions. Store-backed engines report zero — the
    /// rebuilds happen once, in the store (see
    /// [`crate::store::StoreStats::recompose_passes`]).
    pub fn recompose_passes(&self) -> u64 {
        self.readers.iter().map(FieldReader::recompose_passes).sum()
    }

    /// Refinement rounds the readers answered from their memoized
    /// reconstruction — zero decodes, zero recompose passes.
    pub fn recon_cache_hits(&self) -> u64 {
        self.readers.iter().map(FieldReader::recon_cache_hits).sum()
    }

    /// Wall-clock nanoseconds the readers spent rebuilding
    /// reconstructions.
    pub fn reconstruct_nanos(&self) -> u64 {
        self.readers
            .iter()
            .map(FieldReader::reconstruct_nanos)
            .sum()
    }

    /// The archive manifest the engine retrieves against.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Creates an engine restored to a previously saved progress blob
    /// (from [`RetrievalEngine::save_progress`]) by deterministically
    /// replaying the recorded fetches. The resumed engine continues exactly
    /// where the saved one stopped: same reconstructions, same guaranteed
    /// bounds, same cumulative byte accounting — retrieval sessions survive
    /// process restarts (Fig. 1's long-lived retrieval side).
    pub fn resume(archive: &RefactoredDataset, cfg: EngineConfig, progress: &[u8]) -> Result<Self> {
        Self::resume_from_source(Arc::new(archive.clone()), cfg, progress)
    }

    /// [`RetrievalEngine::resume`] over an arbitrary fragment source.
    ///
    /// The replay is itself plan execution: each field's restore schedule
    /// is derived from its progress marker without fetching, the combined
    /// schedule rides one source-ordered
    /// [`FragmentSource::read_many`] batch, and the readers then consume
    /// the staged payloads — the same single fetch code path a
    /// [`crate::plan::RetrievalPlan`] drives.
    pub fn resume_from_source(
        source: Arc<dyn FragmentSource>,
        cfg: EngineConfig,
        progress: &[u8],
    ) -> Result<Self> {
        let mut engine = Self::from_source(source, cfg)?;
        let mut r = pqr_util::byteio::ByteReader::new(progress);
        if r.get_raw(4)? != b"PQRP" {
            return Err(PqrError::CorruptStream("bad progress magic".into()));
        }
        let nv = r.get_u32()? as usize;
        if nv != engine.manifest.num_fields() {
            return Err(PqrError::ShapeMismatch(format!(
                "progress has {nv} fields, archive has {}",
                engine.manifest.num_fields()
            )));
        }
        let mut markers = Vec::with_capacity(nv);
        let mut ids: Vec<FragmentId> = Vec::new();
        for i in 0..nv {
            let p = crate::refactored::ReaderProgress::read(&mut r)?;
            ids.extend(
                engine.readers[i]
                    .plan_restore(&p)?
                    .into_iter()
                    .map(|index| FragmentId {
                        field: i as u32,
                        index,
                    }),
            );
            markers.push(p);
        }
        if r.remaining() != 0 {
            return Err(PqrError::CorruptStream("trailing progress bytes".into()));
        }
        if cfg.batch_io {
            engine.source_order(&mut ids);
            engine.prefetch(&ids)?;
        }
        for (i, p) in markers.iter().enumerate() {
            engine.readers[i].restore(p)?;
        }
        Ok(engine)
    }

    /// Serializes the engine's retrieval progress (per-field fetch markers)
    /// for [`RetrievalEngine::resume`]. Small — a few bytes per field — and
    /// independent of the data size.
    pub fn save_progress(&self) -> Vec<u8> {
        let mut w = pqr_util::byteio::ByteWriter::new();
        w.put_raw(b"PQRP");
        w.put_u32(self.readers.len() as u32);
        for r in &self.readers {
            r.progress().write(&mut w);
        }
        w.finish()
    }

    /// Current reconstruction of field `i`.
    pub fn reconstruction(&self, i: usize) -> &[f64] {
        self.readers[i].data()
    }

    /// The resumable progress marker of field `i`'s reader (the per-field
    /// unit [`RetrievalEngine::save_progress`] concatenates).
    pub fn reader_progress(&self, i: usize) -> crate::refactored::ReaderProgress {
        self.readers[i].progress()
    }

    /// Resolution-progressive reconstruction of field `i` from the bytes
    /// fetched so far: drops the `drop_finest` finest multilevel levels and
    /// returns the coarse subgrid (PMGARD's second progression axis, §II).
    /// Errors for representations without a resolution hierarchy.
    pub fn reconstruction_at_resolution(
        &self,
        i: usize,
        drop_finest: usize,
    ) -> Result<(Vec<f64>, Vec<usize>)> {
        self.readers[i].reconstruct_at_resolution(drop_finest)
    }

    /// Achieved primary-data bound of field `i`.
    pub fn field_bound(&self, i: usize) -> f64 {
        self.readers[i].guaranteed_bound()
    }

    /// Cumulative fetched bytes (metadata + fragments + mask).
    pub fn total_fetched(&self) -> usize {
        let mask_bytes = self.manifest.mask.as_ref().map_or(0, |m| m.storage_bytes());
        self.readers
            .iter()
            .map(|r| r.total_fetched())
            .sum::<usize>()
            + mask_bytes
    }

    /// Runs Algorithm 2 until every spec's tolerance is met or the archive
    /// is exhausted. Engines persist across calls, so issuing progressively
    /// tighter requests retrieves incrementally (§III-B).
    ///
    /// This is now a thin wrapper over plan execution: the specs resolve
    /// into a [`crate::plan::RetrievalPlan`] and a
    /// [`crate::plan::PlanExecutor`] drives the refine→estimate→tighten
    /// loop with batched fragment I/O (unless
    /// [`EngineConfig::batch_io`] is off) — there is exactly one fetch
    /// code path. Use the plan API directly for per-target reporting,
    /// byte budgets and shared-fragment accounting.
    pub fn retrieve(&mut self, qois: &[QoiSpec]) -> Result<RetrievalReport> {
        let plan = crate::plan::RetrievalPlan::resolve(self, qois.to_vec(), None)?;
        let report = crate::plan::PlanExecutor::new(self).execute(&plan)?;
        Ok(report.as_legacy())
    }

    /// The engine's readers, in field order (crate-internal: the plan
    /// executor plans and reports through these; consumption goes through
    /// [`RetrievalEngine::refine_round`]).
    pub(crate) fn readers(&self) -> &[FieldReader] {
        &self.readers
    }

    /// The engine configuration (crate-internal).
    pub(crate) fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Sorts fragment ids into storage order (ascending directory offset)
    /// so a batch presents the backend maximal coalescing opportunities.
    pub(crate) fn source_order(&self, ids: &mut [FragmentId]) {
        ids.sort_by_key(|&id| {
            self.manifest
                .fragment(id)
                .map(|f| f.offset)
                .unwrap_or(u64::MAX)
        });
    }

    /// Batches `ids` through the source's [`FragmentSource::read_many`]
    /// and parks the payloads on the engine's stage, where the readers'
    /// per-fragment consume path picks them up.
    pub(crate) fn prefetch(&self, ids: &[FragmentId]) -> Result<()> {
        if ids.is_empty() {
            return Ok(());
        }
        let payloads = self.source.read_many(ids)?;
        for (&id, payload) in ids.iter().zip(payloads) {
            self.stage.put(id, payload);
        }
        Ok(())
    }

    /// The effective per-field decode worker count.
    fn workers(&self) -> usize {
        match self.cfg.workers {
            0 => pqr_util::par::worker_count(),
            n => n,
        }
    }

    /// Executes one refinement round: stages `schedule` (batched, and
    /// overlapped with decode when [`EngineConfig::overlap_io`] allows),
    /// then refines every field with a finite requested bound — in
    /// parallel across fields, since their cursors are independent.
    ///
    /// With `workers = 1` and overlap off this is exactly the
    /// legacy prefetch-then-refine sequence; the parallel/overlapped
    /// variants produce bit-identical reconstructions and byte accounting
    /// (asserted by `prop_plan_equivalence` and the engine tests below).
    pub(crate) fn refine_round(
        &mut self,
        requested: &[f64],
        schedule: Option<&[FragmentId]>,
    ) -> Result<()> {
        let workers = self.workers();
        match schedule {
            Some(ids) if self.cfg.overlap_io && ids.len() >= OVERLAP_MIN_FRAGMENTS => {
                let source = Arc::clone(&self.source);
                let stage = Arc::clone(&self.stage);
                let chunk = ids.len().div_ceil(OVERLAP_CHUNKS).max(1);
                let (io_before, wait_before) = (stage.io_nanos(), stage.wait_nanos());
                stage.begin_round(ids);
                let decoded = std::thread::scope(|s| {
                    let io = s.spawn({
                        let stage = Arc::clone(&stage);
                        move || -> Result<()> {
                            let _guard = RoundGuard(&stage);
                            let t0 = std::time::Instant::now();
                            for chunk_ids in ids.chunks(chunk) {
                                let payloads = source.read_many(chunk_ids)?;
                                for (&id, payload) in chunk_ids.iter().zip(payloads) {
                                    stage.put(id, payload);
                                }
                            }
                            stage.add_io_nanos(t0.elapsed().as_nanos() as u64);
                            Ok(())
                        }
                    });
                    let decoded = self.refine_fields(requested, workers);
                    // decode's verdict wins: it fell back to direct fetches
                    // for anything the prefetcher failed to deliver, so a
                    // prefetch error with a clean decode is only lost overlap
                    let _ = io.join().expect("prefetcher panicked");
                    decoded
                });
                // credit this round's hidden I/O (clamped per round, so a
                // stall-heavy round cannot erase another round's saving)
                let io = stage.io_nanos() - io_before;
                let wait = stage.wait_nanos() - wait_before;
                stage.add_saved_nanos(io.saturating_sub(wait));
                decoded
            }
            Some(ids) => {
                // mirror the overlapped arm's error contract: a failed
                // batch degrades to the readers' per-fragment fallback
                // fetches, and decode's verdict decides the round
                let _ = self.prefetch(ids);
                self.refine_fields(requested, workers)
            }
            None => self.refine_fields(requested, workers),
        }
    }

    /// Refines every field with a finite requested bound, fanning the
    /// independent per-field cursors across `workers` threads.
    ///
    /// A failing field stops further work: sequentially that is the legacy
    /// short-circuit exactly; in parallel, in-flight fields finish but no
    /// new field starts once a failure is flagged, and the first error in
    /// field order is returned.
    fn refine_fields(&mut self, requested: &[f64], workers: usize) -> Result<()> {
        // Lock-free pre-pass: count fields whose certified bound is still
        // above the request. Coalesced serve rounds mostly arrive here with
        // every field already published at depth (adoption-only rounds);
        // spinning up the worker pool to confirm "nothing to do" per field
        // would serialize on pool dispatch instead. Fewer than two pending
        // fields never benefits from parallelism, so take the sequential
        // arm — bit-identical by construction, each reader refines alone.
        let pending = self
            .readers
            .iter()
            .enumerate()
            .filter(|(j, reader)| {
                requested
                    .get(*j)
                    .is_some_and(|eb| eb.is_finite() && reader.guaranteed_bound() > *eb)
            })
            .count();
        if workers <= 1 || pending < 2 {
            for (j, reader) in self.readers.iter_mut().enumerate() {
                if requested.get(j).is_some_and(|eb| eb.is_finite()) {
                    reader.refine_to(requested[j])?;
                }
            }
            return Ok(());
        }
        let failed = std::sync::atomic::AtomicBool::new(false);
        let results = pqr_util::par::par_dynamic_mut(&mut self.readers, workers, |j, reader| {
            if failed.load(std::sync::atomic::Ordering::Relaxed) {
                return Ok(()); // another field already failed: stop fetching
            }
            match requested.get(j) {
                Some(&eb) if eb.is_finite() => reader
                    .refine_to(eb)
                    .map(|_| ())
                    .inspect_err(|_| failed.store(true, std::sync::atomic::Ordering::Relaxed)),
                _ => Ok(()),
            }
        });
        results.into_iter().collect()
    }

    /// Cumulative fetch tallies of the engine's source, with the
    /// executor-side [`SourceStats::overlap_saved_ms`] counter overlaid
    /// (raw sources always report zero there).
    pub fn source_stats(&self) -> SourceStats {
        let mut s = self.source.stats();
        s.overlap_saved_ms = self.stage.overlap_saved_ms();
        s
    }

    /// Max estimated error and its location for each QoI, under the current
    /// reconstructions and the given per-field bounds.
    pub fn scan_qois(&self, qois: &[QoiSpec], eps: &[f64]) -> Vec<(f64, usize)> {
        let ne = self.manifest.num_elements();
        let nv = self.manifest.num_fields();
        if ne == 0 {
            return vec![(0.0, 0); qois.len()];
        }
        let recons: Vec<&[f64]> = self.readers.iter().map(|r| r.data()).collect();
        let mask = self.manifest.mask.as_ref();
        let cfg = &self.cfg.bound_config;

        let chunk_scan = |start: usize, end: usize| {
            let mut local = vec![(0.0f64, 0usize); qois.len()];
            let mut x = vec![0.0f64; nv];
            let mut eps_pt = eps.to_vec();
            for j in start..end {
                let masked = mask.is_some_and(|m| m.is_masked(j));
                for i in 0..nv {
                    x[i] = recons[i][j];
                    eps_pt[i] = eps[i];
                }
                if masked {
                    // certified exact zeros on the masked fields
                    for &i in mask.unwrap().fields() {
                        x[i] = 0.0;
                        eps_pt[i] = 0.0;
                    }
                }
                for (k, q) in qois.iter().enumerate() {
                    if let Some((lo, hi)) = q.region {
                        if j < lo || j >= hi {
                            continue; // outside this spec's region of interest
                        }
                    }
                    let est = q.expr.eval_bounded(&x, &eps_pt, cfg).bound;
                    if est > local[k].0 {
                        local[k] = (est, j);
                    }
                }
            }
            local
        };
        if !self.cfg.parallel_scan {
            return chunk_scan(0, ne);
        }
        par_chunk_reduce(
            ne,
            vec![(0.0f64, 0usize); qois.len()],
            chunk_scan,
            |mut a, b| {
                for (sa, sb) in a.iter_mut().zip(b) {
                    if sb.0 > sa.0 {
                        *sa = sb;
                    }
                }
                a
            },
        )
    }

    /// QoI error estimate at a single point under hypothetical bounds —
    /// the `estimate_error` of Algorithm 4.
    pub fn point_estimate(&self, expr: &QoiExpr, j: usize, eps: &[f64]) -> f64 {
        let nv = self.manifest.num_fields();
        let mut x = vec![0.0f64; nv];
        let mut eps_pt = vec![0.0f64; nv];
        self.point_estimate_scratch(expr, j, eps, &mut x, &mut eps_pt)
    }

    /// [`RetrievalEngine::point_estimate`] with caller-provided scratch
    /// (`x`, `eps_pt`, both `num_fields` long) — the Algorithm-4
    /// tightening loop calls this once per candidate bound vector, so the
    /// per-call temporaries are hoisted out of the loop.
    pub(crate) fn point_estimate_scratch(
        &self,
        expr: &QoiExpr,
        j: usize,
        eps: &[f64],
        x: &mut [f64],
        eps_pt: &mut [f64],
    ) -> f64 {
        let nv = self.manifest.num_fields();
        for i in 0..nv {
            x[i] = self.readers[i].data()[j];
            eps_pt[i] = eps[i];
        }
        if let Some(m) = self.manifest.mask.as_ref() {
            if m.is_masked(j) {
                for &i in m.fields() {
                    x[i] = 0.0;
                    eps_pt[i] = 0.0;
                }
            }
        }
        expr.eval_bounded(x, eps_pt, &self.cfg.bound_config).bound
    }

    /// Evaluates a QoI on the current reconstruction (what the analysis
    /// task would consume), with the mask overlay applied. The per-point
    /// evaluation fans across the engine's worker budget (unless
    /// [`EngineConfig::parallel_scan`] is off); each worker hoists its
    /// input scratch out of its chunk loop and the chunks write disjoint
    /// output ranges, so the result is identical at every worker count.
    pub fn qoi_values(&self, expr: &QoiExpr) -> Vec<f64> {
        let ne = self.manifest.num_elements();
        let nv = self.manifest.num_fields();
        let recons: Vec<&[f64]> = self.readers.iter().map(|r| r.data()).collect();
        let mask = self.manifest.mask.as_ref();
        let mut out = vec![0.0f64; ne];
        let workers = if self.cfg.parallel_scan {
            self.workers()
        } else {
            1
        };
        par_chunk_fill(&mut out, workers, |start, chunk| {
            let mut x = vec![0.0f64; nv];
            for (off, slot) in chunk.iter_mut().enumerate() {
                let j = start + off;
                for i in 0..nv {
                    x[i] = recons[i][j];
                }
                if let Some(m) = mask {
                    if m.is_masked(j) {
                        for &i in m.fields() {
                            x[i] = 0.0;
                        }
                    }
                }
                *slot = expr.eval(&x);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refactored::Scheme;
    use pqr_qoi::library::{species_product, velocity_magnitude};
    use pqr_util::stats;

    /// A 3-field velocity dataset with some exact-zero "wall" points.
    fn velocity_dataset(n: usize, with_walls: bool) -> Dataset {
        let mut ds = Dataset::new(&[n]);
        for c in 0..3usize {
            let f: Vec<f64> = (0..n)
                .map(|i| {
                    if with_walls && i % 97 == 0 {
                        0.0
                    } else {
                        ((i + c * 41) as f64 * 0.013).sin() * 30.0 + 40.0
                    }
                })
                .collect();
            ds.add_field(["Vx", "Vy", "Vz"][c], f).unwrap();
        }
        ds
    }

    fn engine_for(archive: &RefactoredDataset) -> RetrievalEngine {
        RetrievalEngine::new(archive, EngineConfig::default()).unwrap()
    }

    /// The headline guarantee: estimated ≥ actual, estimated ≤ tolerance.
    fn assert_guarantee(ds: &Dataset, engine: &RetrievalEngine, spec: &QoiSpec, report_est: f64) {
        let truth = ds.qoi_values(&spec.expr);
        let approx = engine.qoi_values(&spec.expr);
        let actual = stats::max_abs_diff(&truth, &approx);
        assert!(
            actual <= report_est,
            "{}: actual {actual} > estimated {report_est}",
            spec.name
        );
        assert!(
            report_est <= spec.tol_abs(),
            "{}: estimated {report_est} > tolerance {}",
            spec.name,
            spec.tol_abs()
        );
    }

    #[test]
    fn vtot_tolerance_met_across_schemes() {
        let ds = velocity_dataset(2000, false);
        for scheme in Scheme::extended() {
            let archive = ds
                .refactor_with_bounds(
                    scheme,
                    &(1..=10).map(|i| 10f64.powi(-i)).collect::<Vec<_>>(),
                )
                .unwrap();
            let mut engine = engine_for(&archive);
            let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, &ds).unwrap();
            let report = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
            assert!(report.satisfied, "{}: not satisfied", scheme.name());
            assert_guarantee(&ds, &engine, &spec, report.max_est_errors[0]);
        }
    }

    #[test]
    fn zero_walls_need_the_mask() {
        let ds = velocity_dataset(1500, true);
        let archive_no_mask = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut archive_masked = archive_no_mask.clone();
        archive_masked.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();

        let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-3, &ds).unwrap();

        // with the mask: satisfied
        let mut engine = engine_for(&archive_masked);
        let report = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(report.satisfied, "masked retrieval should satisfy");
        assert_guarantee(&ds, &engine, &spec, report.max_est_errors[0]);

        // without the mask: paper-mode √ estimate is unboundable at the
        // exact-zero walls, so the engine must exhaust and report failure
        let mut eng2 = RetrievalEngine::new(
            &archive_no_mask,
            EngineConfig {
                max_iterations: 8,
                max_tightenings: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let r2 = eng2.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(!r2.satisfied, "unmasked zeros should be unboundable");
        // masked run must also be cheaper than the futile unmasked one
        assert!(engine.total_fetched() < eng2.total_fetched());
    }

    #[test]
    fn multivariate_product_qoi() {
        let n = 1200;
        let mut ds = Dataset::new(&[n]);
        ds.add_field(
            "H2",
            (0..n)
                .map(|i| 0.1 + 0.05 * (i as f64 * 0.01).sin())
                .collect(),
        )
        .unwrap();
        ds.add_field(
            "O2",
            (0..n)
                .map(|i| 0.2 + 0.1 * (i as f64 * 0.017).cos())
                .collect(),
        )
        .unwrap();
        let archive = ds.refactor(Scheme::Psz3Delta).unwrap();
        let mut engine = engine_for(&archive);
        let spec = QoiSpec::relative("x0*x1", species_product(0, 1), 1e-5, &ds).unwrap();
        let report = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(report.satisfied);
        assert_guarantee(&ds, &engine, &spec, report.max_est_errors[0]);
    }

    #[test]
    fn saved_progress_resumes_identically_across_schemes() {
        let ds = velocity_dataset(1500, false);
        let vtot = velocity_magnitude(0, 3);
        for scheme in Scheme::extended() {
            let archive = ds
                .refactor_with_bounds(
                    scheme,
                    &(1..=10).map(|i| 10f64.powi(-i)).collect::<Vec<_>>(),
                )
                .unwrap();
            // session 1: loose request, then save
            let mut e1 = engine_for(&archive);
            let spec = QoiSpec::relative("VTOT", vtot.clone(), 1e-2, &ds).unwrap();
            e1.retrieve(std::slice::from_ref(&spec)).unwrap();
            let blob = e1.save_progress();

            // session 2: resume, verify state equality, continue tighter
            let mut e2 = RetrievalEngine::resume(&archive, EngineConfig::default(), &blob).unwrap();
            for i in 0..3 {
                assert_eq!(
                    e1.reconstruction(i),
                    e2.reconstruction(i),
                    "{} field {i}: reconstruction drifted",
                    scheme.name()
                );
                assert_eq!(e1.field_bound(i), e2.field_bound(i), "{}", scheme.name());
            }
            assert_eq!(e1.total_fetched(), e2.total_fetched(), "{}", scheme.name());

            let tight = spec.at_tolerance(1e-5);
            let r1 = e1.retrieve(std::slice::from_ref(&tight)).unwrap();
            let r2 = e2.retrieve(std::slice::from_ref(&tight)).unwrap();
            assert!(r1.satisfied && r2.satisfied, "{}", scheme.name());
            assert_eq!(r1.total_fetched, r2.total_fetched, "{}", scheme.name());
            assert_eq!(
                e1.reconstruction(0),
                e2.reconstruction(0),
                "{}: post-resume divergence",
                scheme.name()
            );
        }
    }

    #[test]
    fn resume_rejects_mismatched_or_corrupt_progress() {
        let ds = velocity_dataset(300, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut engine = engine_for(&archive);
        let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-2, &ds).unwrap();
        engine.retrieve(&[spec]).unwrap();
        let blob = engine.save_progress();

        // corrupt magic
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(RetrievalEngine::resume(&archive, EngineConfig::default(), &bad).is_err());
        // truncation
        assert!(RetrievalEngine::resume(
            &archive,
            EngineConfig::default(),
            &blob[..blob.len() / 2]
        )
        .is_err());
        // wrong scheme: progress from PMGARD against a PSZ3 archive
        let other = ds
            .refactor_with_bounds(Scheme::Psz3, &[1e-1, 1e-2])
            .unwrap();
        assert!(RetrievalEngine::resume(&other, EngineConfig::default(), &blob).is_err());
    }

    #[test]
    fn region_restricted_spec_costs_less_and_holds_inside() {
        let ds = velocity_dataset(4000, false);
        let vtot = velocity_magnitude(0, 3);
        let range = ds.qoi_range(&vtot).unwrap();

        // global request
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut global = engine_for(&archive);
        let g = global
            .retrieve(&[QoiSpec::with_range("VTOT", vtot.clone(), 1e-6, range)])
            .unwrap();
        assert!(g.satisfied);

        // same tolerance, but only over a 5% window
        let archive2 = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut regional = engine_for(&archive2);
        let spec = QoiSpec::with_range("VTOT", vtot.clone(), 1e-6, range).restrict_to(1000, 1200);
        let r = regional.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(r.satisfied);
        assert!(
            r.total_fetched <= g.total_fetched,
            "regional {} > global {}",
            r.total_fetched,
            g.total_fetched
        );

        // the guarantee holds inside the region
        let truth = ds.qoi_values(&vtot);
        let derived = regional.qoi_values(&vtot);
        let worst_in = (1000..1200)
            .map(|j| (truth[j] - derived[j]).abs())
            .fold(0.0f64, f64::max);
        assert!(worst_in <= r.max_est_errors[0]);
        assert!(r.max_est_errors[0] <= spec.tol_abs());
    }

    #[test]
    fn region_validation() {
        let ds = velocity_dataset(100, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut engine = engine_for(&archive);
        let vtot = velocity_magnitude(0, 3);
        let range = ds.qoi_range(&vtot).unwrap();
        // out of bounds
        let bad = QoiSpec::with_range("v", vtot.clone(), 1e-3, range).restrict_to(0, 101);
        assert!(engine.retrieve(&[bad]).is_err());
        // inverted
        let bad = QoiSpec::with_range("v", vtot.clone(), 1e-3, range).restrict_to(50, 10);
        assert!(engine.retrieve(&[bad]).is_err());
        // empty region is trivially satisfied with zero estimate
        let empty = QoiSpec::with_range("v", vtot, 1e-9, range).restrict_to(10, 10);
        let r = engine.retrieve(&[empty]).unwrap();
        assert!(r.satisfied);
        assert_eq!(r.max_est_errors[0], 0.0);
    }

    #[test]
    fn multiple_qois_all_respected() {
        let ds = velocity_dataset(1000, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut engine = engine_for(&archive);
        let specs = vec![
            QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, &ds).unwrap(),
            QoiSpec::relative("Vx2", QoiExpr::var(0).pow(2), 1e-5, &ds).unwrap(),
            QoiSpec::relative("VxVy", species_product(0, 1), 1e-3, &ds).unwrap(),
        ];
        let report = engine.retrieve(&specs).unwrap();
        assert!(report.satisfied);
        for (k, spec) in specs.iter().enumerate() {
            assert_guarantee(&ds, &engine, spec, report.max_est_errors[k]);
        }
    }

    #[test]
    fn progressive_series_is_incremental() {
        let ds = velocity_dataset(3000, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut engine = engine_for(&archive);
        let base = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1.0, &ds).unwrap();
        let mut last_bytes = 0usize;
        for i in 1..=6 {
            let spec = base.at_tolerance(10f64.powi(-i));
            let report = engine.retrieve(&[spec]).unwrap();
            assert!(report.satisfied, "τ=1e-{i}");
            assert!(
                report.total_fetched >= last_bytes,
                "cumulative bytes must not shrink"
            );
            last_bytes = report.total_fetched;
        }
    }

    #[test]
    fn uninvolved_fields_are_not_fetched() {
        let n = 800;
        let mut ds = Dataset::new(&[n]);
        ds.add_field("used", (0..n).map(|i| (i as f64 * 0.02).sin()).collect())
            .unwrap();
        ds.add_field("unused", (0..n).map(|i| (i as f64 * 0.03).cos()).collect())
            .unwrap();
        let archive = ds.refactor(Scheme::Psz3).unwrap();
        let mut engine = engine_for(&archive);
        let spec = QoiSpec::relative("sq", QoiExpr::var(0).pow(2), 1e-4, &ds).unwrap();
        engine.retrieve(&[spec]).unwrap();
        // the unused field's reader fetched nothing (snapshot schemes start
        // at 0 fetched bytes)
        assert_eq!(engine.readers[1].total_fetched(), 0);
        assert!(engine.readers[0].total_fetched() > 0);
    }

    #[test]
    fn tighter_tolerance_fetches_more() {
        let ds = velocity_dataset(2000, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let spec_loose = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-2, &ds).unwrap();
        let spec_tight = spec_loose.at_tolerance(1e-6);

        let mut e1 = engine_for(&archive);
        let r1 = e1.retrieve(&[spec_loose]).unwrap();
        let mut e2 = engine_for(&archive);
        let r2 = e2.retrieve(&[spec_tight]).unwrap();
        assert!(r1.satisfied && r2.satisfied);
        assert!(
            r2.total_fetched > r1.total_fetched,
            "tight {} !> loose {}",
            r2.total_fetched,
            r1.total_fetched
        );
    }

    #[test]
    fn invalid_requests_rejected() {
        let ds = velocity_dataset(100, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        // bad reduction factor
        assert!(RetrievalEngine::new(
            &archive,
            EngineConfig {
                reduction_factor: 1.0,
                ..Default::default()
            }
        )
        .is_err());
        // arity overflow
        let mut engine = engine_for(&archive);
        let bad = QoiSpec::absolute("bad", QoiExpr::var(9), 1e-3);
        assert!(engine.retrieve(&[bad]).is_err());
        // non-positive tolerance
        let bad2 = QoiSpec::absolute("bad2", QoiExpr::var(0), 0.0);
        assert!(engine.retrieve(&[bad2]).is_err());
    }

    #[test]
    fn parallel_decode_is_bit_identical_to_sequential() {
        // workers = 1 is the legacy sequential field order; more
        // workers must produce byte-identical reconstructions, bounds and
        // byte accounting — fields are independent decode units
        let ds = velocity_dataset(3000, false);
        for scheme in [Scheme::PmgardHb, Scheme::Pzfp, Scheme::Psz3Delta] {
            let archive = ds
                .refactor_with_bounds(scheme, &(1..=8).map(|i| 10f64.powi(-i)).collect::<Vec<_>>())
                .unwrap();
            let run = |workers: usize| {
                let cfg = EngineConfig {
                    workers,
                    ..Default::default()
                };
                let mut engine = RetrievalEngine::new(&archive, cfg).unwrap();
                let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-5, &ds).unwrap();
                let r = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
                let recons: Vec<Vec<f64>> =
                    (0..3).map(|i| engine.reconstruction(i).to_vec()).collect();
                let bounds: Vec<u64> = (0..3).map(|i| engine.field_bound(i).to_bits()).collect();
                (
                    r.total_fetched,
                    r.max_est_errors[0].to_bits(),
                    recons,
                    bounds,
                )
            };
            let seq = run(1);
            for workers in [2, 8] {
                assert_eq!(seq, run(workers), "{} workers={workers}", scheme.name());
            }
        }
    }

    #[test]
    fn overlapped_io_is_bit_identical_to_plain_prefetch() {
        // the double-buffered prefetcher changes only *when* payloads land,
        // never what is decoded: reconstructions, bounds, bytes and
        // fragment counts must match the single-batch path exactly
        let ds = velocity_dataset(4000, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let bytes = {
            let mut a = archive.clone();
            a.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
            a.to_bytes()
        };
        let run = |overlap_io: bool| {
            let src = Arc::new(crate::fragstore::InMemorySource::new(bytes.clone()).unwrap());
            let cfg = EngineConfig {
                overlap_io,
                ..Default::default()
            };
            let mut engine = RetrievalEngine::from_source(src, cfg).unwrap();
            let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-6, &ds).unwrap();
            let r = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
            let stats = engine.source_stats();
            (
                r.total_fetched,
                r.max_est_errors[0].to_bits(),
                (0..3)
                    .map(|i| engine.reconstruction(i).to_vec())
                    .collect::<Vec<_>>(),
                stats.fetches,
                stats.fetched_bytes,
            )
        };
        let (tf_a, est_a, rec_a, frags_a, bytes_a) = run(true);
        let (tf_b, est_b, rec_b, frags_b, bytes_b) = run(false);
        assert_eq!(tf_a, tf_b);
        assert_eq!(est_a, est_b);
        assert_eq!(rec_a, rec_b);
        assert_eq!(
            frags_a, frags_b,
            "every fragment still fetched exactly once"
        );
        assert_eq!(bytes_a, bytes_b);
    }

    #[test]
    fn stage_promise_protocol_unblocks_on_round_end() {
        // a waiter blocked on a promised fragment must fall back (None)
        // once the round ends, and receive the payload if it arrives first
        let stage = FragmentStage::new();
        let id = FragmentId { field: 0, index: 3 };
        assert_eq!(stage.take_or_wait(id), None, "unpromised: no blocking");
        std::thread::scope(|s| {
            stage.begin_round(&[id]);
            let waiter = s.spawn(|| stage.take_or_wait(id));
            std::thread::sleep(std::time::Duration::from_millis(20));
            stage.put(id, Arc::new(vec![7u8; 3]));
            assert_eq!(waiter.join().unwrap().unwrap().as_slice(), &[7u8; 3]);

            let id2 = FragmentId { field: 1, index: 0 };
            stage.begin_round(&[id2]);
            let stage_ref = &stage;
            let waiter = s.spawn(move || stage_ref.take_or_wait(id2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            stage.end_round(); // prefetcher aborts: waiter must not hang
            assert_eq!(waiter.join().unwrap(), None);
        });
    }

    #[test]
    fn zero_decode_round_performs_zero_recompose() {
        // the epoch-memoization contract: a retrieval round that decodes
        // nothing must also rebuild nothing — repeated (or looser)
        // requests are answered from the cached reconstruction
        let ds = velocity_dataset(3000, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut engine = engine_for(&archive);
        let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, &ds).unwrap();
        let r1 = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(r1.satisfied);
        let passes = engine.recompose_passes();
        assert!(passes > 0, "the deep retrieve must have run recompose");
        let hits = engine.recon_cache_hits();
        let recon_before: Vec<Vec<f64>> =
            (0..3).map(|i| engine.reconstruction(i).to_vec()).collect();

        // identical request: zero new bytes, zero recompose passes
        let r2 = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(r2.satisfied);
        assert_eq!(r2.bytes_fetched, 0);
        assert_eq!(
            engine.recompose_passes(),
            passes,
            "zero-decode round must perform zero recompose passes"
        );
        assert!(engine.recon_cache_hits() > hits);
        // and a looser request is equally free
        let loose = spec.at_tolerance(1e-2);
        engine.retrieve(&[loose]).unwrap();
        assert_eq!(engine.recompose_passes(), passes);
        for i in 0..3 {
            assert_eq!(recon_before[i], engine.reconstruction(i), "field {i}");
        }
    }

    #[test]
    fn sequential_scan_equals_parallel_scan() {
        let ds = velocity_dataset(6000, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, &ds).unwrap();
        let run = |parallel_scan: bool| {
            let cfg = EngineConfig {
                parallel_scan,
                ..Default::default()
            };
            let mut engine = RetrievalEngine::new(&archive, cfg).unwrap();
            let r = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
            (r.total_fetched, r.max_est_errors[0].to_bits())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn absolute_tolerance_spec() {
        let ds = velocity_dataset(400, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let spec = QoiSpec::absolute("Vx", QoiExpr::var(0), 0.5);
        assert_eq!(spec.tol_abs(), 0.5);
        let mut engine = engine_for(&archive);
        let r = engine.retrieve(&[spec]).unwrap();
        assert!(r.satisfied);
        let real = stats::max_abs_diff(ds.field(0), engine.reconstruction(0));
        assert!(real <= 0.5);
    }

    #[test]
    fn shared_fields_across_qois_use_tightest_initial_bound() {
        // Algorithm 3: a field read by two QoIs starts at the tighter of the
        // two relative tolerances
        let ds = velocity_dataset(800, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let loose = QoiSpec::relative("a", QoiExpr::var(0).pow(2), 1e-1, &ds).unwrap();
        let tight = QoiSpec::relative("b", QoiExpr::var(0).abs(), 1e-6, &ds).unwrap();
        let mut engine = engine_for(&archive);
        let r = engine.retrieve(&[loose, tight]).unwrap();
        assert!(r.satisfied);
        // the achieved bound on field 0 must satisfy the tight QoI: since
        // |x| is 1-Lipschitz, ε₀ ≤ 1e-6·range(|Vx|)
        let range = stats::value_range(&ds.qoi_values(&QoiExpr::var(0).abs()));
        assert!(r.field_bounds[0] <= 1e-6 * range * 1.001);
    }

    #[test]
    fn report_accounting_sane() {
        let ds = velocity_dataset(500, false);
        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let mut engine = engine_for(&archive);
        let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-3, &ds).unwrap();
        let report = engine.retrieve(&[spec]).unwrap();
        assert!(report.satisfied);
        assert!(report.iterations >= 1);
        assert_eq!(report.total_fetched, engine.total_fetched());
        assert!(report.bitrate > 0.0);
        assert_eq!(report.field_bounds.len(), 3);
        // bitrate consistent with bytes: bits = bytes*8 / (ne*nv)
        let expect = report.total_fetched as f64 * 8.0 / (500.0 * 3.0);
        assert!((report.bitrate - expect).abs() < 1e-12);
    }
}
