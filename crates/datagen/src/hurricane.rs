//! Hurricane Isabel stand-in: 3-D vortex wind field.
//!
//! The real dataset (Table III: 100×500×500, 3 velocity fields) is a WRF
//! simulation of hurricane Isabel. The stand-in is a Rankine-style vortex —
//! solid-body rotation inside the eyewall radius, 1/r decay outside — with a
//! height-drifting centre, inflow, vertical shear and power-law turbulence:
//! smooth, rotational, anisotropic wind fields with the magnitude structure
//! the VTOT QoI sees in the real data.

use crate::spectral::SpectralField;
use crate::RawDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hurricane generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct HurricaneConfig {
    /// Grid (z, y, x) — paper order 100×500×500.
    pub dims: [usize; 3],
    /// Peak tangential wind speed (m/s).
    pub v_max: f64,
    /// Eyewall radius as a fraction of the domain half-width.
    pub eye_radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HurricaneConfig {
    /// Laptop-scale default: 25×120×120.
    pub fn small() -> Self {
        Self {
            dims: [25, 120, 120],
            v_max: 70.0,
            eye_radius: 0.15,
            seed: 0x15abe1,
        }
    }

    /// Paper-scale: 100×500×500.
    pub fn paper() -> Self {
        Self {
            dims: [100, 500, 500],
            ..Self::small()
        }
    }
}

/// Field names in variable-index order (U, V, W — the three wind
/// components the VTOT QoI reads).
pub const FIELD_NAMES: [&str; 3] = ["U", "V", "W"];

/// Generates the wind fields.
pub fn generate(cfg: &HurricaneConfig) -> RawDataset {
    let [nz, ny, nx] = cfg.dims;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let turb: Vec<SpectralField> = (0..3)
        .map(|i| SpectralField::new(rng.gen::<u64>() ^ i, 48, 2.0, 48.0, 1.6))
        .collect();
    let drift: f64 = rng.gen_range(0.05..0.15); // eye drift with height
    let n = nz * ny * nx;
    let mut u = vec![0.0f64; n];
    let mut v = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];

    let fill = |comp: &mut [f64], which: usize| {
        pqr_util::par::par_map_into(comp, |idx| {
            let i = idx % nx;
            let j = (idx / nx) % ny;
            let k = idx / (nx * ny);
            let z = if nz > 1 {
                k as f64 / (nz - 1) as f64
            } else {
                0.0
            };
            let x = if nx > 1 {
                i as f64 / (nx - 1) as f64
            } else {
                0.0
            };
            let y = if ny > 1 {
                j as f64 / (ny - 1) as f64
            } else {
                0.0
            };
            // eye centre drifts with height
            let cx = 0.5 + drift * (z - 0.5);
            let cy = 0.5 - drift * (z - 0.5);
            let dx = x - cx;
            let dy = y - cy;
            let r = (dx * dx + dy * dy).sqrt().max(1e-9);
            // Rankine profile with altitude decay of intensity
            let vt = if r < cfg.eye_radius {
                cfg.v_max * r / cfg.eye_radius
            } else {
                cfg.v_max * cfg.eye_radius / r
            } * (1.0 - 0.5 * z);
            // tangential + weak radial inflow
            let (tx, ty) = (-dy / r, dx / r);
            let (rx, ry) = (-dx / r, -dy / r);
            let inflow = 0.15 * vt;
            match which {
                0 => vt * tx + inflow * rx + 4.0 * turb[0].sample(x, y, z),
                1 => vt * ty + inflow * ry + 4.0 * turb[1].sample(x, y, z),
                _ => 1.5 * turb[2].sample(x, y, z) * (1.0 - z), // weak updraft
            }
        });
    };
    fill(&mut u, 0);
    fill(&mut v, 1);
    fill(&mut w, 2);

    RawDataset {
        dims: vec![nz, ny, nx],
        fields: vec![
            (FIELD_NAMES[0].to_string(), u),
            (FIELD_NAMES[1].to_string(), v),
            (FIELD_NAMES[2].to_string(), w),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HurricaneConfig {
        HurricaneConfig {
            dims: [6, 40, 40],
            v_max: 70.0,
            eye_radius: 0.15,
            seed: 5,
        }
    }

    #[test]
    fn shape_and_determinism() {
        let a = generate(&tiny());
        assert_eq!(a.dims, vec![6, 40, 40]);
        assert_eq!(a.fields.len(), 3);
        assert_eq!(a.num_elements(), 6 * 40 * 40);
        let b = generate(&tiny());
        assert_eq!(a.fields[1].1, b.fields[1].1);
    }

    #[test]
    fn wind_has_vortex_structure() {
        // the eye (calm) sits near the domain centre and the eyewall ring is
        // much faster — locate both empirically (the eye drifts with height)
        let cfg = tiny();
        let ds = generate(&cfg);
        let u = ds.field("U").unwrap();
        let v = ds.field("V").unwrap();
        let nx = 40;
        let speed = |j: usize, i: usize| {
            let idx = j * nx + i; // z = 0 slab
            (u[idx] * u[idx] + v[idx] * v[idx]).sqrt()
        };
        // calmest point within the central third
        let mut eye = (0usize, 0usize);
        let mut calm = f64::INFINITY;
        for j in 13..27 {
            for i in 13..27 {
                let s = speed(j, i);
                if s < calm {
                    calm = s;
                    eye = (j, i);
                }
            }
        }
        // fastest point anywhere in the slab
        let mut fast = 0.0f64;
        let mut wall = (0usize, 0usize);
        for j in 0..40 {
            for i in 0..40 {
                let s = speed(j, i);
                if s > fast {
                    fast = s;
                    wall = (j, i);
                }
            }
        }
        assert!(fast > calm + 25.0, "eyewall {fast} vs eye {calm}");
        // eyewall is a ring around the eye, not the eye itself
        let dist = ((wall.0 as f64 - eye.0 as f64).powi(2)
            + (wall.1 as f64 - eye.1 as f64).powi(2))
        .sqrt();
        assert!(dist >= 2.0, "fastest wind on top of the eye (dist {dist})");
        assert!((30.0..150.0).contains(&fast), "peak speed {fast}");
    }

    #[test]
    fn speeds_are_hurricane_scale() {
        let ds = generate(&tiny());
        let u = ds.field("U").unwrap();
        let max = u.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        assert!((20.0..150.0).contains(&max), "max |U| = {max}");
    }

    #[test]
    fn vertical_component_is_weak() {
        let ds = generate(&tiny());
        let w = ds.field("W").unwrap();
        let u = ds.field("U").unwrap();
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(rms(w) < rms(u) / 3.0);
    }

    #[test]
    fn paper_dims() {
        assert_eq!(HurricaneConfig::paper().dims, [100, 500, 500]);
    }
}
