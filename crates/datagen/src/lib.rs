//! # pqr-datagen — synthetic stand-ins for the paper's datasets
//!
//! The paper evaluates on five datasets (Table III): GE CFD (small/large,
//! proprietary), Hurricane Isabel, NYX cosmology, and S3D combustion. None
//! are redistributable here, so this crate generates seeded synthetic
//! equivalents that exercise the same code paths and preserve the
//! characteristics the experiments depend on:
//!
//! * **smooth multi-scale structure** (random-phase Fourier superposition
//!   with power-law spectra) so compressors decorrelate the way they do on
//!   real fields — rate-distortion *shape* is what the figures compare;
//! * **domain structure per dataset**: variable-length blocks and exact-zero
//!   wall nodes for GE (the outlier mask's reason to exist), vortex flow for
//!   Hurricane, power-law velocity fields for NYX, flame fronts with
//!   species in [0, ~0.3] for S3D;
//! * **physical consistency** where QoIs need it: GE pressure/density obey
//!   an ideal-gas relation so that `T = P/(D·R)` lands near 300 K, keeping
//!   every Eq. (1)–(6) QoI well-defined (positive `T+S`, subsonic Mach).
//!
//! Every generator is deterministic in its seed; default sizes are scaled
//! down from the paper's (laptop-friendly), with the paper-scale dimensions
//! available via each config's `paper()` constructor.

pub mod ge;
pub mod hurricane;
pub mod nyx;
pub mod s3d;
pub mod spectral;
pub mod zones;

/// A generated multi-field array (row-major fields of identical shape).
#[derive(Debug, Clone)]
pub struct RawDataset {
    /// Array shape.
    pub dims: Vec<usize>,
    /// `(name, data)` pairs; every `data.len() == dims.iter().product()`.
    pub fields: Vec<(String, Vec<f64>)>,
}

impl RawDataset {
    /// Elements per field.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Field data by name.
    pub fn field(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Total raw size in bytes (f64 storage).
    pub fn raw_bytes(&self) -> usize {
        self.fields.len() * self.num_elements() * 8
    }
}
