//! NYX cosmology stand-in: Gaussian random velocity fields.
//!
//! The real dataset (Table III: 512³, 3 velocity fields) comes from the NYX
//! AMR cosmology code; baryon velocities are, to good approximation,
//! Gaussian random fields with power-law spectra at these scales. The
//! stand-in superposes random Fourier modes with a near-Kolmogorov slope
//! and scales to NYX's native cm/s magnitudes (~10⁷), preserving exactly
//! what the VTOT experiments exercise: smooth 3-D fields whose magnitude
//! never sits exactly at zero (no mask needed, unlike GE).

use crate::spectral::SpectralField;
use crate::RawDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NYX generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct NyxConfig {
    /// Cubic grid extent per side (paper: 512).
    pub n: usize,
    /// RMS velocity scale in cm/s (NYX native units).
    pub v_rms: f64,
    /// Bulk-flow offset per component (keeps |V| away from exact zero).
    pub bulk: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NyxConfig {
    /// Laptop-scale default: 64³.
    pub fn small() -> Self {
        Self {
            n: 64,
            v_rms: 9.0e6,
            bulk: 2.0e6,
            seed: 0x0057_a9e5,
        }
    }

    /// Paper-scale: 512³.
    pub fn paper() -> Self {
        Self {
            n: 512,
            ..Self::small()
        }
    }
}

/// Field names in variable-index order.
pub const FIELD_NAMES: [&str; 3] = ["velocity_x", "velocity_y", "velocity_z"];

/// Generates the three velocity fields.
pub fn generate(cfg: &NyxConfig) -> RawDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dims = [cfg.n, cfg.n, cfg.n];
    let fields = FIELD_NAMES
        .iter()
        .map(|name| {
            let f = SpectralField::new(rng.gen(), 64, 1.0, 32.0, 1.67);
            let bulk = cfg.bulk * rng.gen_range(-1.0..=1.0f64);
            let mut data = f.sample_3d(&dims);
            for v in &mut data {
                *v = *v * cfg.v_rms + bulk;
            }
            (name.to_string(), data)
        })
        .collect();
    RawDataset {
        dims: dims.to_vec(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NyxConfig {
        NyxConfig {
            n: 16,
            v_rms: 9.0e6,
            bulk: 2.0e6,
            seed: 11,
        }
    }

    #[test]
    fn shape_and_units() {
        let ds = generate(&tiny());
        assert_eq!(ds.dims, vec![16, 16, 16]);
        assert_eq!(ds.fields.len(), 3);
        let vx = ds.field("velocity_x").unwrap();
        let max = vx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            (1.0e6..1.0e8).contains(&max),
            "velocities should be ~1e7 cm/s, max |vx| = {max:e}"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.fields[2].1, b.fields[2].1);
    }

    #[test]
    fn components_are_decorrelated() {
        let ds = generate(&tiny());
        let x = ds.field("velocity_x").unwrap();
        let y = ds.field("velocity_y").unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(x), mean(y));
        let cov: f64 = x
            .iter()
            .zip(y)
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>()
            / x.len() as f64;
        let sx = (x.iter().map(|a| (a - mx) * (a - mx)).sum::<f64>() / x.len() as f64).sqrt();
        let sy = (y.iter().map(|b| (b - my) * (b - my)).sum::<f64>() / y.len() as f64).sqrt();
        let corr = cov / (sx * sy);
        assert!(corr.abs() < 0.5, "components too correlated: {corr}");
    }

    #[test]
    fn no_exact_zero_velocity_magnitude() {
        // unlike GE, NYX needs no outlier mask — check the premise
        let ds = generate(&tiny());
        let (x, y, z) = (
            ds.field("velocity_x").unwrap(),
            ds.field("velocity_y").unwrap(),
            ds.field("velocity_z").unwrap(),
        );
        for j in 0..x.len() {
            let m = (x[j] * x[j] + y[j] * y[j] + z[j] * z[j]).sqrt();
            assert!(m > 0.0, "exact-zero magnitude at {j}");
        }
    }

    #[test]
    fn paper_dims() {
        assert_eq!(NyxConfig::paper().n, 512);
    }
}
