//! Piecewise-regime ("zoned") synthetic fields.
//!
//! Region-of-interest experiments need data whose difficulty varies across
//! the domain: a tolerance scoped to a quiet zone should cost less than one
//! covering a violent zone, and by how much depends on the amplitude ratio.
//! This generator produces a 1-D field partitioned into contiguous zones,
//! each a sinusoid mixture at its own amplitude, so the per-zone difficulty
//! is controlled exactly. Used by ablation 2c and the RoI tests.

use crate::RawDataset;

/// One contiguous zone of a [`generate`]d field.
#[derive(Debug, Clone, Copy)]
pub struct Zone {
    /// Fraction of the domain this zone occupies (fractions are normalized
    /// over all zones).
    pub weight: f64,
    /// Peak amplitude of the zone's signal.
    pub amplitude: f64,
    /// Base spatial frequency (cycles across the zone).
    pub frequency: f64,
}

/// Configuration for the zoned generator.
#[derive(Debug, Clone)]
pub struct ZonesConfig {
    /// Number of samples.
    pub n: usize,
    /// The zones, left to right.
    pub zones: Vec<Zone>,
    /// RNG seed (phases).
    pub seed: u64,
}

impl ZonesConfig {
    /// The two-zone field of ablation 2c: a quiet half (amplitude 1) and a
    /// violent half (amplitude 100).
    pub fn quiet_violent(n: usize) -> Self {
        Self {
            n,
            zones: vec![
                Zone {
                    weight: 1.0,
                    amplitude: 1.0,
                    frequency: 31.0,
                },
                Zone {
                    weight: 1.0,
                    amplitude: 100.0,
                    frequency: 27.0,
                },
            ],
            seed: 0x2e0e5,
        }
    }
}

/// Generates the zoned field as a single-field dataset (`"u"`).
///
/// Returns the dataset together with the half-open index range of every
/// zone, so callers can build region-restricted requests without
/// re-deriving the layout.
pub fn generate(cfg: &ZonesConfig) -> (RawDataset, Vec<(usize, usize)>) {
    assert!(!cfg.zones.is_empty(), "need at least one zone");
    let total_w: f64 = cfg.zones.iter().map(|z| z.weight).sum();
    let mut data = Vec::with_capacity(cfg.n);
    let mut ranges = Vec::with_capacity(cfg.zones.len());
    let mut s = cfg.seed | 1;
    let mut rand01 = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64
    };
    let mut start = 0usize;
    for (zi, z) in cfg.zones.iter().enumerate() {
        let end = if zi + 1 == cfg.zones.len() {
            cfg.n
        } else {
            start + ((cfg.n as f64) * z.weight / total_w) as usize
        };
        let len = end - start;
        let (p1, p2) = (
            rand01() * std::f64::consts::TAU,
            rand01() * std::f64::consts::TAU,
        );
        for j in 0..len {
            let x = j as f64 / len.max(1) as f64;
            // two harmonics keep the zone non-trivial for the predictors
            let v = z.amplitude
                * (0.8 * (x * z.frequency * std::f64::consts::TAU + p1).sin()
                    + 0.2 * (x * z.frequency * 3.7 * std::f64::consts::TAU + p2).sin());
            data.push(v);
        }
        ranges.push((start, end));
        start = end;
    }
    (
        RawDataset {
            dims: vec![cfg.n],
            fields: vec![("u".to_string(), data)],
        },
        ranges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_cover_the_domain_exactly() {
        let (ds, ranges) = generate(&ZonesConfig::quiet_violent(10_001));
        assert_eq!(ds.num_elements(), 10_001);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 10_001);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "zones must tile contiguously");
        }
    }

    #[test]
    fn amplitudes_respected_per_zone() {
        let (ds, ranges) = generate(&ZonesConfig::quiet_violent(20_000));
        let u = ds.field("u").unwrap();
        let max_in = |(a, b): (usize, usize)| u[a..b].iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let quiet = max_in(ranges[0]);
        let violent = max_in(ranges[1]);
        assert!(quiet <= 1.0 + 1e-9, "quiet zone peak {quiet}");
        assert!(violent > 50.0, "violent zone peak {violent}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ZonesConfig::quiet_violent(500);
        let (a, _) = generate(&cfg);
        let (b, _) = generate(&cfg);
        assert_eq!(a.field("u").unwrap(), b.field("u").unwrap());
        let (c, _) = generate(&ZonesConfig {
            seed: 99,
            ..cfg.clone()
        });
        assert_ne!(a.field("u").unwrap(), c.field("u").unwrap());
    }

    #[test]
    fn uneven_weights() {
        let cfg = ZonesConfig {
            n: 1000,
            zones: vec![
                Zone {
                    weight: 3.0,
                    amplitude: 1.0,
                    frequency: 5.0,
                },
                Zone {
                    weight: 1.0,
                    amplitude: 2.0,
                    frequency: 5.0,
                },
            ],
            seed: 7,
        };
        let (_, ranges) = generate(&cfg);
        assert_eq!(ranges[0], (0, 750));
        assert_eq!(ranges[1], (750, 1000));
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn empty_zones_panic() {
        generate(&ZonesConfig {
            n: 10,
            zones: vec![],
            seed: 1,
        });
    }
}
