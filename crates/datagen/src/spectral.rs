//! Random-phase Fourier superposition — the shared "smooth turbulent field"
//! primitive behind every generator.
//!
//! A field is a sum of `M` sinusoidal modes with random directions, random
//! phases, and amplitudes following a power law `|k|^{-slope}`. Slope ≈ 5/3
//! gives Kolmogorov-like turbulence spectra; larger slopes give smoother
//! fields. The result is normalised to zero mean, unit RMS, so callers scale
//! and offset to physical units.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sinusoidal mode.
#[derive(Debug, Clone, Copy)]
struct Mode {
    k: [f64; 3],
    amp: f64,
    phase: f64,
}

/// A reusable spectral field sampler over the unit cube.
#[derive(Debug, Clone)]
pub struct SpectralField {
    modes: Vec<Mode>,
    norm: f64,
}

impl SpectralField {
    /// Builds `num_modes` random modes with wavenumbers in
    /// `[k_min, k_max]` (cycles per unit length) and amplitude
    /// `∝ |k|^{-slope}`.
    pub fn new(seed: u64, num_modes: usize, k_min: f64, k_max: f64, slope: f64) -> Self {
        assert!(num_modes > 0, "need at least one mode");
        assert!(k_min > 0.0 && k_max >= k_min, "bad wavenumber range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut modes = Vec::with_capacity(num_modes);
        let mut sum_sq = 0.0f64;
        for _ in 0..num_modes {
            // log-uniform |k| covers the range evenly in octaves
            let lk = rng.gen_range(k_min.ln()..=k_max.ln());
            let kmag = lk.exp();
            // random direction on the sphere
            let z: f64 = rng.gen_range(-1.0..=1.0);
            let az: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (1.0 - z * z).sqrt();
            let dir = [r * az.cos(), r * az.sin(), z];
            let amp = kmag.powf(-slope);
            sum_sq += 0.5 * amp * amp; // E[sin²] = 1/2
            modes.push(Mode {
                k: [
                    dir[0] * kmag * std::f64::consts::TAU,
                    dir[1] * kmag * std::f64::consts::TAU,
                    dir[2] * kmag * std::f64::consts::TAU,
                ],
                amp,
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
            });
        }
        Self {
            modes,
            norm: 1.0 / sum_sq.sqrt(),
        }
    }

    /// Samples the field at a point of the unit cube (zero mean, ~unit RMS).
    #[inline]
    pub fn sample(&self, x: f64, y: f64, z: f64) -> f64 {
        let mut v = 0.0;
        for m in &self.modes {
            v += m.amp * (m.k[0] * x + m.k[1] * y + m.k[2] * z + m.phase).sin();
        }
        v * self.norm
    }

    /// Fills a 1-D array sampled along the x-axis of the unit cube.
    pub fn sample_1d(&self, n: usize) -> Vec<f64> {
        let step = if n > 1 { 1.0 / (n - 1) as f64 } else { 0.0 };
        (0..n)
            .map(|i| self.sample(i as f64 * step, 0.0, 0.0))
            .collect()
    }

    /// Fills a row-major 3-D array over the unit cube.
    pub fn sample_3d(&self, dims: &[usize; 3]) -> Vec<f64> {
        let [n0, n1, n2] = *dims;
        let inv = |n: usize| if n > 1 { 1.0 / (n - 1) as f64 } else { 0.0 };
        let (i0, i1, i2) = (inv(n0), inv(n1), inv(n2));
        let mut out = vec![0.0f64; n0 * n1 * n2];
        pqr_util::par::par_map_into(&mut out, |idx| {
            let k = idx % n2;
            let j = (idx / n2) % n1;
            let i = idx / (n1 * n2);
            self.sample(i as f64 * i0, j as f64 * i1, k as f64 * i2)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = SpectralField::new(7, 32, 1.0, 32.0, 1.7).sample_1d(100);
        let b = SpectralField::new(7, 32, 1.0, 32.0, 1.7).sample_1d(100);
        assert_eq!(a, b);
        let c = SpectralField::new(8, 32, 1.0, 32.0, 1.7).sample_1d(100);
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_unit_rms() {
        let v = SpectralField::new(42, 64, 1.0, 16.0, 1.5).sample_1d(20_000);
        let rms = (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(
            (0.3..3.0).contains(&rms),
            "rms {rms} far from unit normalisation"
        );
    }

    #[test]
    fn smoother_slope_compresses_better() {
        // steeper spectrum ⇒ less fine-scale energy ⇒ smaller neighbour
        // differences (proxy for compressibility)
        let rough = SpectralField::new(1, 64, 1.0, 64.0, 1.0).sample_1d(4096);
        let smooth = SpectralField::new(1, 64, 1.0, 64.0, 3.0).sample_1d(4096);
        let tv = |v: &[f64]| {
            v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
                / (v.iter().map(|x| x.abs()).sum::<f64>() + 1e-12)
        };
        assert!(tv(&smooth) < tv(&rough));
    }

    #[test]
    fn sample_3d_layout_matches_pointwise_sampling() {
        let f = SpectralField::new(3, 16, 1.0, 8.0, 2.0);
        let dims = [4usize, 5, 6];
        let arr = f.sample_3d(&dims);
        assert_eq!(arr.len(), 120);
        // spot-check the row-major index math
        let idx = 2 * 30 + 3 * 6 + 4;
        let want = f.sample(2.0 / 3.0, 3.0 / 4.0, 4.0 / 5.0);
        assert!((arr[idx] - want).abs() < 1e-12);
    }

    #[test]
    fn single_point_dims() {
        let f = SpectralField::new(9, 8, 1.0, 4.0, 2.0);
        assert_eq!(f.sample_1d(1).len(), 1);
        assert_eq!(f.sample_3d(&[1, 1, 1]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn zero_modes_rejected() {
        SpectralField::new(0, 0, 1.0, 2.0, 1.0);
    }
}
