//! GE CFD stand-in: turbomachinery-like flow on variable-length blocks.
//!
//! The real GE data is `nblocks × {variable}` with five fields (Vx, Vy, Vz,
//! P, D) on unstructured meshes, linearized to 1-D (§III-A). This generator
//! reproduces the properties the experiments rely on:
//!
//! * per-block variable lengths (the `{ }` in Table III);
//! * a boundary-layer-shaped axial flow with swirl plus power-law
//!   turbulence, so the fields are smooth-but-multiscale like real CFD;
//! * **exact-zero velocity wall nodes** (a few percent of points) — the
//!   outliers that make Theorem 2 estimates blow up and motivated the
//!   paper's mask (§V-A);
//! * ideal-gas-consistent P and D so `T = P/(D·R)` ≈ 300 K and every GE QoI
//!   of Eq. (1)–(6) is well-defined and subsonic.

use crate::spectral::SpectralField;
use crate::RawDataset;
use pqr_qoi::ge::R;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GE generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GeConfig {
    /// Number of independent blocks (paper: 200 small, 96 large).
    pub blocks: usize,
    /// Mean block length; actual lengths vary ±25%.
    pub mean_block_len: usize,
    /// Fraction of wall (exact zero velocity) nodes per block.
    pub wall_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeConfig {
    /// Laptop-scale GE-small: 200 blocks, ~17 k points each (≈27 MB/field).
    pub fn small() -> Self {
        Self {
            blocks: 200,
            mean_block_len: 3_400,
            wall_fraction: 0.03,
            seed: 0x6745_2301,
        }
    }

    /// Paper-scale GE-small (137.96 MB over 5 double fields ⇒ ≈3.6 M points
    /// total ⇒ ~18 k per block).
    pub fn small_paper() -> Self {
        Self {
            blocks: 200,
            mean_block_len: 18_000,
            wall_fraction: 0.03,
            seed: 0x6745_2301,
        }
    }

    /// Laptop-scale GE-large: 96 blocks.
    pub fn large() -> Self {
        Self {
            blocks: 96,
            mean_block_len: 12_000,
            wall_fraction: 0.03,
            seed: 0x0bad_cafe,
        }
    }

    /// Paper-scale GE-large (7.79 GB over 5 fields ⇒ ≈2.2 M points/block).
    pub fn large_paper() -> Self {
        Self {
            blocks: 96,
            mean_block_len: 2_180_000,
            wall_fraction: 0.03,
            seed: 0x0bad_cafe,
        }
    }

    /// Same config scaled to a different mean block length.
    pub fn with_block_len(mut self, len: usize) -> Self {
        self.mean_block_len = len;
        self
    }
}

/// GE field names, in variable-index order (see `pqr_qoi::ge`).
pub const FIELD_NAMES: [&str; 5] = ["VelocityX", "VelocityY", "VelocityZ", "Pressure", "Density"];

/// Generates all blocks. Each block is an independent 1-D [`RawDataset`]
/// with the five GE fields.
pub fn generate(cfg: &GeConfig) -> Vec<RawDataset> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.blocks)
        .map(|b| {
            let scale = rng.gen_range(0.75..=1.25);
            let len = ((cfg.mean_block_len as f64 * scale) as usize).max(16);
            let seed = rng.gen::<u64>();
            generate_block(b, len, cfg.wall_fraction, seed)
        })
        .collect()
}

/// Generates one block.
fn generate_block(block_id: usize, len: usize, wall_fraction: f64, seed: u64) -> RawDataset {
    let mut rng = StdRng::seed_from_u64(seed ^ (block_id as u64).wrapping_mul(0x9e37_79b9));
    // independent turbulence per component/field
    let turb: Vec<SpectralField> = (0..6)
        .map(|i| SpectralField::new(rng.gen::<u64>() ^ i, 48, 2.0, 64.0, 1.7))
        .collect();
    let u0 = rng.gen_range(60.0..100.0); // axial speed
    let swirl = rng.gen_range(10.0..30.0);
    let t0 = rng.gen_range(290.0..310.0); // stagnation-ish temperature
    let p0 = 101_325.0 * rng.gen_range(0.9..1.1);

    let mut vx = Vec::with_capacity(len);
    let mut vy = Vec::with_capacity(len);
    let mut vz = Vec::with_capacity(len);
    let mut p = Vec::with_capacity(len);
    let mut d = Vec::with_capacity(len);

    // wall nodes cluster at the block ends (hub/casing after linearization)
    let wall_band = ((len as f64 * wall_fraction / 2.0) as usize).max(1);
    for i in 0..len {
        let x = i as f64 / len as f64;
        let is_wall = i < wall_band || i + wall_band >= len;
        if is_wall {
            vx.push(0.0);
            vy.push(0.0);
            vz.push(0.0);
        } else {
            // boundary layer: velocity rises from the walls
            let dist = (i.min(len - 1 - i) as f64) / len as f64;
            let bl = 1.0 - (-dist * 40.0).exp();
            vx.push(bl * (u0 + 12.0 * turb[0].sample(x, 0.1, 0.2)));
            vy.push(bl * (swirl * (x * 9.0).sin() + 8.0 * turb[1].sample(x, 0.3, 0.7)));
            vz.push(bl * 6.0 * turb[2].sample(x, 0.9, 0.4));
        }
        // thermodynamics: smooth T field, P fluctuations, ideal-gas D
        let t = t0 + 8.0 * turb[3].sample(x, 0.5, 0.5);
        let pressure = p0 * (1.0 + 0.04 * turb[4].sample(x, 0.2, 0.8));
        p.push(pressure);
        d.push(pressure / (R * t) * (1.0 + 1e-4 * turb[5].sample(x, 0.6, 0.1)));
    }

    RawDataset {
        dims: vec![len],
        fields: vec![
            (FIELD_NAMES[0].to_string(), vx),
            (FIELD_NAMES[1].to_string(), vy),
            (FIELD_NAMES[2].to_string(), vz),
            (FIELD_NAMES[3].to_string(), p),
            (FIELD_NAMES[4].to_string(), d),
        ],
    }
}

/// Concatenates blocks into one linearized 1-D dataset (how the paper feeds
/// GE-small to the sequential experiments).
pub fn concat(blocks: &[RawDataset]) -> RawDataset {
    let total: usize = blocks.iter().map(|b| b.num_elements()).sum();
    let mut fields: Vec<(String, Vec<f64>)> = FIELD_NAMES
        .iter()
        .map(|n| (n.to_string(), Vec::with_capacity(total)))
        .collect();
    for b in blocks {
        for (i, name) in FIELD_NAMES.iter().enumerate() {
            fields[i]
                .1
                .extend_from_slice(b.field(name).expect("GE block missing field"));
        }
    }
    RawDataset {
        dims: vec![total],
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_qoi::ge;

    fn tiny() -> GeConfig {
        GeConfig {
            blocks: 8,
            mean_block_len: 400,
            wall_fraction: 0.04,
            seed: 99,
        }
    }

    #[test]
    fn deterministic_and_block_count() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dims, y.dims);
            assert_eq!(x.fields[0].1, y.fields[0].1);
        }
    }

    #[test]
    fn block_lengths_vary() {
        let blocks = generate(&tiny());
        let lens: std::collections::BTreeSet<usize> =
            blocks.iter().map(|b| b.num_elements()).collect();
        assert!(lens.len() > 4, "lengths should vary: {lens:?}");
    }

    #[test]
    fn wall_nodes_are_exact_zeros() {
        let blocks = generate(&tiny());
        let mut zeros = 0usize;
        let mut total = 0usize;
        for b in blocks {
            let vx = b.field("VelocityX").unwrap();
            let vy = b.field("VelocityY").unwrap();
            let vz = b.field("VelocityZ").unwrap();
            for j in 0..vx.len() {
                total += 1;
                if vx[j] == 0.0 && vy[j] == 0.0 && vz[j] == 0.0 {
                    zeros += 1;
                }
            }
        }
        let frac = zeros as f64 / total as f64;
        assert!(
            (0.005..0.10).contains(&frac),
            "wall fraction {frac} out of range"
        );
    }

    #[test]
    fn thermodynamics_keep_qois_well_defined() {
        let blocks = generate(&tiny());
        let combined = concat(&blocks);
        let p = combined.field("Pressure").unwrap();
        let d = combined.field("Density").unwrap();
        for j in 0..p.len() {
            let t = p[j] / (d[j] * ge::R);
            assert!(
                (250.0..350.0).contains(&t),
                "T = {t} K at {j} is unphysical"
            );
        }
    }

    #[test]
    fn flow_is_subsonic() {
        let blocks = generate(&tiny());
        let c = concat(&blocks);
        let (vx, vy, vz) = (
            c.field("VelocityX").unwrap(),
            c.field("VelocityY").unwrap(),
            c.field("VelocityZ").unwrap(),
        );
        let p = c.field("Pressure").unwrap();
        let d = c.field("Density").unwrap();
        for j in 0..vx.len() {
            let vtot = (vx[j] * vx[j] + vy[j] * vy[j] + vz[j] * vz[j]).sqrt();
            let t = p[j] / (d[j] * ge::R);
            let sound = (ge::GAMMA * ge::R * t).sqrt();
            assert!(vtot / sound < 1.0, "supersonic at {j}");
        }
    }

    #[test]
    fn concat_preserves_totals() {
        let blocks = generate(&tiny());
        let total: usize = blocks.iter().map(|b| b.num_elements()).sum();
        let c = concat(&blocks);
        assert_eq!(c.num_elements(), total);
        assert_eq!(c.fields.len(), 5);
        assert_eq!(c.dims, vec![total]);
    }

    #[test]
    fn configs_have_paper_block_counts() {
        assert_eq!(GeConfig::small().blocks, 200);
        assert_eq!(GeConfig::large().blocks, 96);
        assert_eq!(GeConfig::small_paper().blocks, 200);
        assert_eq!(GeConfig::large_paper().blocks, 96);
    }
}
