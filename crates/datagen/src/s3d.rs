//! S3D combustion stand-in: flame-front species fields.
//!
//! The real dataset (Table III: 1200×334×200, 8 species) is a direct
//! numerical simulation of turbulent combustion; the paper's QoIs are molar
//! concentration products `xᵢ·xⱼ` feeding reaction rates of progress (e.g.
//! `x₁x₃` for `H + O₂ ⇌ O + OH`). The stand-in builds a wrinkled flame
//! front: reactants (H₂, O₂) sigmoid **down** across the front, products
//! (H₂O) sigmoid **up**, and radicals (H, O, OH, HO₂, H₂O₂) peak **at** the
//! front — with turbulent wrinkling of the front surface. Values live in
//! the small positive ranges typical of mass/molar fractions, which is what
//! makes the product QoIs "easy to preserve" (§VI-B) relative to √-type
//! QoIs.

use crate::spectral::SpectralField;
use crate::RawDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Species names in variable-index order: the paper's `x0..x7`.
/// `x0=H2, x1=O2, x3=H, x4=O, x5=OH` are the ones named in §VI-A.
pub const FIELD_NAMES: [&str; 8] = ["H2", "O2", "H2O", "H", "O", "OH", "HO2", "H2O2"];

/// The four molar-concentration products evaluated in Fig. 6, as variable
/// index pairs: `x1x3` (O₂·H), `x4x5` (O·OH), `x0x4` (H₂·O), `x3x5` (H·OH).
pub const PRODUCT_PAIRS: [(usize, usize); 4] = [(1, 3), (4, 5), (0, 4), (3, 5)];

/// S3D generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct S3dConfig {
    /// Grid dims (paper: 1200×334×200).
    pub dims: [usize; 3],
    /// Flame-front thickness as a fraction of the x-extent.
    pub front_thickness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl S3dConfig {
    /// Laptop-scale default: 120×34×20.
    pub fn small() -> Self {
        Self {
            dims: [120, 34, 20],
            front_thickness: 0.04,
            seed: 0x53d0_53d0,
        }
    }

    /// Paper-scale: 1200×334×200.
    pub fn paper() -> Self {
        Self {
            dims: [1200, 334, 200],
            ..Self::small()
        }
    }
}

/// Generates the eight species fields.
pub fn generate(cfg: &S3dConfig) -> RawDataset {
    let [n0, n1, n2] = cfg.dims;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // wrinkling of the front position over the (y, z) plane + mild noise
    let wrinkle = SpectralField::new(rng.gen(), 32, 1.0, 12.0, 1.8);
    let noise: Vec<SpectralField> = (0..8)
        .map(|i| SpectralField::new(rng.gen::<u64>() ^ i, 24, 4.0, 40.0, 2.0))
        .collect();

    // per-species profile parameters: (unburnt level, burnt level, radical peak)
    // reactants fall, products rise, radicals peak at the front
    let profile: [(f64, f64, f64); 8] = [
        (0.028, 0.002, 0.0),  // H2   reactant
        (0.220, 0.020, 0.0),  // O2   reactant
        (0.005, 0.240, 0.0),  // H2O  product
        (0.0, 0.0005, 0.008), // H    radical
        (0.0, 0.0008, 0.012), // O    radical
        (0.0, 0.0030, 0.020), // OH   radical
        (0.0, 0.0002, 0.004), // HO2  radical
        (0.0, 0.0001, 0.002), // H2O2 radical
    ];

    let n = n0 * n1 * n2;
    let fields = FIELD_NAMES
        .iter()
        .enumerate()
        .map(|(sp, name)| {
            let (unburnt, burnt, peak) = profile[sp];
            let mut data = vec![0.0f64; n];
            let thick = cfg.front_thickness;
            let noise_f = &noise[sp];
            let wrinkle_f = &wrinkle;
            pqr_util::par::par_map_into(&mut data, |idx| {
                let k = idx % n2;
                let j = (idx / n2) % n1;
                let i = idx / (n1 * n2);
                let x = if n0 > 1 {
                    i as f64 / (n0 - 1) as f64
                } else {
                    0.0
                };
                let y = if n1 > 1 {
                    j as f64 / (n1 - 1) as f64
                } else {
                    0.0
                };
                let z = if n2 > 1 {
                    k as f64 / (n2 - 1) as f64
                } else {
                    0.0
                };
                // wrinkled front position across the x-axis
                let front = 0.5 + 0.08 * wrinkle_f.sample(0.0, y, z);
                let s = ((x - front) / thick).tanh() * 0.5 + 0.5; // 0 unburnt → 1 burnt
                let gauss = (-((x - front) / thick) * ((x - front) / thick)).exp();
                let base = unburnt + (burnt - unburnt) * s + peak * gauss;
                // multiplicative turbulence, clamped non-negative
                (base * (1.0 + 0.05 * noise_f.sample(x, y, z))).max(0.0)
            });
            (name.to_string(), data)
        })
        .collect();

    RawDataset {
        dims: cfg.dims.to_vec(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> S3dConfig {
        S3dConfig {
            dims: [40, 12, 8],
            front_thickness: 0.05,
            seed: 3,
        }
    }

    #[test]
    fn shape_and_names() {
        let ds = generate(&tiny());
        assert_eq!(ds.dims, vec![40, 12, 8]);
        assert_eq!(ds.fields.len(), 8);
        for name in FIELD_NAMES {
            assert!(ds.field(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn species_fractions_physical() {
        let ds = generate(&tiny());
        for (name, data) in &ds.fields {
            for (j, &v) in data.iter().enumerate() {
                assert!(v >= 0.0, "{name}[{j}] negative: {v}");
                assert!(v < 0.5, "{name}[{j}] too large: {v}");
            }
        }
    }

    #[test]
    fn reactants_fall_products_rise_across_front() {
        let cfg = tiny();
        let ds = generate(&cfg);
        let [n0, n1, n2] = cfg.dims;
        let mid = (n1 / 2) * n2 + n2 / 2;
        let at_x = |field: &[f64], i: usize| field[i * n1 * n2 + mid];
        let o2 = ds.field("O2").unwrap();
        let h2o = ds.field("H2O").unwrap();
        assert!(at_x(o2, 2) > at_x(o2, n0 - 3) + 0.1, "O2 should burn away");
        assert!(at_x(h2o, n0 - 3) > at_x(h2o, 2) + 0.1, "H2O should form");
    }

    #[test]
    fn radicals_peak_at_the_front() {
        let cfg = tiny();
        let ds = generate(&cfg);
        let [n0, n1, n2] = cfg.dims;
        let mid = (n1 / 2) * n2 + n2 / 2;
        let oh = ds.field("OH").unwrap();
        let series: Vec<f64> = (0..n0).map(|i| oh[i * n1 * n2 + mid]).collect();
        let peak_pos = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // the wrinkled front sits near the middle of the x-extent
        assert!(
            (n0 / 4..3 * n0 / 4).contains(&peak_pos),
            "OH peak at {peak_pos}/{n0}"
        );
    }

    #[test]
    fn product_pairs_are_in_range() {
        for (a, b) in PRODUCT_PAIRS {
            assert!(a < 8 && b < 8);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.fields[5].1, b.fields[5].1);
    }

    #[test]
    fn paper_dims() {
        assert_eq!(S3dConfig::paper().dims, [1200, 334, 200]);
    }
}
