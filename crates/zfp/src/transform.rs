//! Reversible integer decorrelating transform on 4^d blocks.
//!
//! ZFP decorrelates each block with a lifted, near-orthogonal integer
//! transform whose low bit is lossy. We substitute an *exactly reversible*
//! two-level S-transform (the lifting scheme behind lossless JPEG 2000)
//! arranged in the same block/axis pattern: per 4-vector, averages and
//! differences are taken pairwise and then across the pair of averages.
//! Exact reversibility buys a provable property the QoI machinery relies on:
//! once every bitplane of a block is fetched, the reconstruction error is
//! *only* the fixed-point rounding — there is no transform-induced residual
//! to model.
//!
//! ## Range growth (forward)
//!
//! For inputs bounded by `M`, pairwise floor-averages stay within `[-M, M]`
//! (the sum of two such integers lies in `[-2M, 2M]`, so its floor-half lies
//! in `[-M, M]`), and differences stay within `[-2M, 2M]`. Each axis pass
//! therefore grows the ∞-norm by at most a factor of 2: a `d`-dimensional
//! block needs exactly [`growth_bits`]`(d) = d` guard bits.
//!
//! ## Error growth (inverse)
//!
//! When the inverse runs on coefficients perturbed by at most `ε` (an
//! integer: bitplane truncation errors are integral), one axis pass amplifies
//! the perturbation to at most `4ε + 1` (the `+1` comes from the floor in
//! `d >> 1`, and is absorbed as `≤ ε` because `ε ≥ 1` whenever any
//! perturbation exists). Composing over axes gives the per-block
//! reconstruction error factor [`recon_error_factor`]: 5, 21, 85 for 1, 2,
//! 3 dims. These constants are deliberately conservative upper bounds — the
//! guaranteed-vs-real gap they introduce is the ZFP analogue of the paper's
//! Fig. 3 observation that loose estimators cause over-retrieval.

/// Guard bits the forward transform needs on top of the fixed-point width.
#[inline]
pub fn growth_bits(ndims: usize) -> u32 {
    ndims as u32
}

/// Upper bound on the inverse transform's error amplification: if every
/// coefficient of a block is off by at most `ε ≥ 1` (integer), every
/// reconstructed sample is off by at most `recon_error_factor(d) · ε`.
#[inline]
pub fn recon_error_factor(ndims: usize) -> f64 {
    match ndims {
        1 => 5.0,
        2 => 21.0,
        3 => 85.0,
        _ => unreachable!("block grids support 1-3 dims"),
    }
}

/// Forward S-lift of one 4-vector: `(v0,v1,v2,v3) → (s, d, d01, d23)` where
/// `s` is the (floor) block average, `d` the difference of pair averages and
/// `d01`/`d23` the in-pair differences.
#[inline]
fn fwd4(v: [i64; 4]) -> [i64; 4] {
    let s01 = (v[0] + v[1]) >> 1;
    let d01 = v[0] - v[1];
    let s23 = (v[2] + v[3]) >> 1;
    let d23 = v[2] - v[3];
    let s = (s01 + s23) >> 1;
    let d = s01 - s23;
    [s, d, d01, d23]
}

/// Exact inverse of [`fwd4`].
#[inline]
fn inv4(c: [i64; 4]) -> [i64; 4] {
    let s23 = c[0] - (c[1] >> 1);
    let s01 = s23 + c[1];
    let v1 = s01 - (c[2] >> 1);
    let v0 = v1 + c[2];
    let v3 = s23 - (c[3] >> 1);
    let v2 = v3 + c[3];
    [v0, v1, v2, v3]
}

/// Applies `f` to every 4-vector along `axis` of a row-major 4^d block.
#[inline]
fn apply_axis(block: &mut [i64], ndims: usize, axis: usize, f: impl Fn([i64; 4]) -> [i64; 4]) {
    let stride = 4usize.pow((ndims - 1 - axis) as u32);
    for base in 0..block.len() {
        if (base / stride).is_multiple_of(4) {
            let line = [
                block[base],
                block[base + stride],
                block[base + 2 * stride],
                block[base + 3 * stride],
            ];
            let out = f(line);
            block[base] = out[0];
            block[base + stride] = out[1];
            block[base + 2 * stride] = out[2];
            block[base + 3 * stride] = out[3];
        }
    }
}

/// Forward transform of a 4^d block in place (axis 0 first).
pub fn forward(block: &mut [i64], ndims: usize) {
    debug_assert_eq!(block.len(), 4usize.pow(ndims as u32));
    for axis in 0..ndims {
        apply_axis(block, ndims, axis, fwd4);
    }
}

/// Inverse transform of a 4^d block in place (axes in reverse order).
pub fn inverse(block: &mut [i64], ndims: usize) {
    debug_assert_eq!(block.len(), 4usize.pow(ndims as u32));
    for axis in (0..ndims).rev() {
        apply_axis(block, ndims, axis, inv4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64, scale: i64) -> Vec<i64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as i64) % scale
            })
            .collect()
    }

    #[test]
    fn fwd4_inv4_exact_on_extremes() {
        for v in [
            [0i64, 0, 0, 0],
            [1, -1, 1, -1],
            [i64::from(i32::MAX), i64::from(i32::MIN), 7, -7],
            [-5, -5, -5, -5],
            [1 << 52, -(1 << 52), (1 << 52) - 1, -(1 << 52) + 1],
        ] {
            assert_eq!(inv4(fwd4(v)), v, "vector {v:?}");
        }
    }

    #[test]
    fn roundtrip_all_dims_exact() {
        for nd in 1..=3 {
            let n = 4usize.pow(nd as u32);
            let orig = pseudo(n, 0xfeed + nd as u64, 1 << 50);
            let mut blk = orig.clone();
            forward(&mut blk, nd);
            inverse(&mut blk, nd);
            assert_eq!(blk, orig, "ndims={nd}");
        }
    }

    #[test]
    fn growth_within_guard_bits() {
        // adversarial inputs at the fixed-point ceiling
        for nd in 1..=3 {
            let n = 4usize.pow(nd as u32);
            let m = 1i64 << 52;
            for pattern in 0..16u64 {
                let mut blk: Vec<i64> = (0..n)
                    .map(|i| if (pattern >> (i % 4)) & 1 == 1 { m } else { -m })
                    .collect();
                forward(&mut blk, nd);
                let lim = m << growth_bits(nd);
                for &c in &blk {
                    assert!(c.abs() <= lim, "ndims={nd} pattern={pattern}: {c}");
                }
            }
        }
    }

    #[test]
    fn dc_coefficient_is_block_average() {
        // slot 0 after the forward pass is the floor-average of the block
        let mut blk = vec![10i64; 16];
        forward(&mut blk, 2);
        assert_eq!(blk[0], 10);
        for &c in &blk[1..] {
            assert_eq!(c, 0, "constant block has zero AC coefficients");
        }
    }

    #[test]
    fn smooth_ramp_concentrates_energy() {
        // a linear ramp should leave most coefficients small
        let mut blk: Vec<i64> = (0..64).map(|i| (i as i64) * 1000).collect();
        forward(&mut blk, 3);
        let big = blk.iter().filter(|c| c.abs() > 2000).count();
        assert!(big < 16, "{big} large coefficients on a ramp");
    }

    #[test]
    fn inverse_error_amplification_respects_factor() {
        // perturb coefficients by ±ε and check the reconstruction moves by
        // at most recon_error_factor(d)·ε
        for nd in 1..=3usize {
            let n = 4usize.pow(nd as u32);
            let orig = pseudo(n, 0xabc0 + nd as u64, 1 << 40);
            let mut coeffs = orig.clone();
            forward(&mut coeffs, nd);
            for eps in [1i64, 3, 1 << 20] {
                for trial in 0..8u64 {
                    let noise = pseudo(n, 0x1234 + trial, 2 * eps + 1);
                    let mut pert: Vec<i64> = coeffs
                        .iter()
                        .zip(&noise)
                        .map(|(c, z)| c + (z % (eps + 1)))
                        .collect();
                    inverse(&mut pert, nd);
                    let worst = pert
                        .iter()
                        .zip(&orig)
                        .map(|(a, b)| (a - b).abs())
                        .max()
                        .unwrap();
                    let bound = (recon_error_factor(nd) * eps as f64) as i64;
                    assert!(
                        worst <= bound,
                        "ndims={nd} eps={eps}: worst {worst} > bound {bound}"
                    );
                }
            }
        }
    }
}
