//! Partitioning of 1/2/3-D arrays into 4^d blocks.
//!
//! Like ZFP, the codec operates on fixed 4×…×4 blocks so that the
//! decorrelating transform and the bitplane coder see a bounded, cache-sized
//! working set. Arrays whose dimensions are not multiples of 4 are padded by
//! replicating the last valid sample along each axis (clamp-to-edge), which
//! keeps padded lanes as smooth as the data and therefore cheap to code; the
//! scatter pass simply skips them on reconstruction.

/// Block side length along every axis.
pub const SIDE: usize = 4;

/// Geometry of the block grid covering an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockGrid {
    /// Array shape (1–3 dims).
    pub dims: Vec<usize>,
    /// Number of blocks along each axis (`ceil(dim / 4)`).
    pub blocks: Vec<usize>,
}

impl BlockGrid {
    /// Builds the grid for an array shape.
    ///
    /// # Panics
    /// If `dims` is empty or longer than 3 (the workspace supports 1–3-D
    /// Cartesian grids, like the rest of the PQR substrates).
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= 3,
            "block grids support 1-3 dims, got {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
            blocks: dims.iter().map(|&d| d.div_ceil(SIDE)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.iter().product()
    }

    /// Samples per block (`4^ndims`).
    pub fn block_len(&self) -> usize {
        SIDE.pow(self.ndims() as u32)
    }

    /// Number of array elements.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides of the array.
    fn strides(&self) -> [usize; 3] {
        let mut s = [0usize; 3];
        let nd = self.ndims();
        let mut acc = 1usize;
        for a in (0..nd).rev() {
            s[a] = acc;
            acc *= self.dims[a];
        }
        s
    }

    /// Block coordinates of block index `b` (row-major over `self.blocks`).
    fn block_coord(&self, b: usize) -> [usize; 3] {
        let nd = self.ndims();
        let mut c = [0usize; 3];
        let mut rem = b;
        for a in (0..nd).rev() {
            c[a] = rem % self.blocks[a];
            rem /= self.blocks[a];
        }
        c
    }

    /// Copies block `b` out of `data` into `out` (length [`block_len`]),
    /// replicating edge samples into padded lanes.
    ///
    /// [`block_len`]: BlockGrid::block_len
    pub fn gather(&self, data: &[f64], b: usize, out: &mut [f64]) {
        debug_assert_eq!(data.len(), self.num_elements());
        debug_assert_eq!(out.len(), self.block_len());
        let nd = self.ndims();
        let strides = self.strides();
        let bc = self.block_coord(b);
        // local (i,j,k) within the block, row-major over `nd` axes of SIDE
        for (local, slot) in out.iter_mut().enumerate() {
            let mut rem = local;
            let mut idx = 0usize;
            for a in (0..nd).rev() {
                let l = rem % SIDE;
                rem /= SIDE;
                // clamp-to-edge padding
                let g = (bc[a] * SIDE + l).min(self.dims[a] - 1);
                idx += g * strides[a];
            }
            *slot = data[idx];
        }
    }

    /// Writes block `b` from `vals` back into `data`, skipping padded lanes.
    pub fn scatter(&self, data: &mut [f64], b: usize, vals: &[f64]) {
        debug_assert_eq!(data.len(), self.num_elements());
        debug_assert_eq!(vals.len(), self.block_len());
        let nd = self.ndims();
        let strides = self.strides();
        let bc = self.block_coord(b);
        for (local, &v) in vals.iter().enumerate() {
            let mut rem = local;
            let mut idx = 0usize;
            let mut padded = false;
            for a in (0..nd).rev() {
                let l = rem % SIDE;
                rem /= SIDE;
                let g = bc[a] * SIDE + l;
                if g >= self.dims[a] {
                    padded = true;
                    break;
                }
                idx += g * strides[a];
            }
            if !padded {
                data[idx] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = BlockGrid::new(&[9]);
        assert_eq!(g.blocks, vec![3]);
        assert_eq!(g.block_len(), 4);
        let g = BlockGrid::new(&[8, 5]);
        assert_eq!(g.blocks, vec![2, 2]);
        assert_eq!(g.block_len(), 16);
        let g = BlockGrid::new(&[4, 4, 4]);
        assert_eq!(g.num_blocks(), 1);
        assert_eq!(g.block_len(), 64);
    }

    #[test]
    fn gather_scatter_roundtrip_exact_multiple() {
        let g = BlockGrid::new(&[8, 4]);
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut out = vec![0.0; g.num_elements()];
        let mut blk = vec![0.0; g.block_len()];
        for b in 0..g.num_blocks() {
            g.gather(&data, b, &mut blk);
            g.scatter(&mut out, b, &blk);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn gather_scatter_roundtrip_with_padding() {
        for dims in [vec![7], vec![5, 6], vec![3, 5, 2]] {
            let g = BlockGrid::new(&dims);
            let n = g.num_elements();
            let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let mut out = vec![f64::NAN; n];
            let mut blk = vec![0.0; g.block_len()];
            for b in 0..g.num_blocks() {
                g.gather(&data, b, &mut blk);
                g.scatter(&mut out, b, &blk);
            }
            assert_eq!(out, data, "dims {dims:?}");
        }
    }

    #[test]
    fn padding_replicates_edge_values() {
        // 1-D length 5: second block is [data[4], data[4], data[4], data[4]]
        let g = BlockGrid::new(&[5]);
        let data = vec![1.0, 2.0, 3.0, 4.0, 9.0];
        let mut blk = vec![0.0; 4];
        g.gather(&data, 1, &mut blk);
        assert_eq!(blk, vec![9.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn block_order_is_row_major() {
        let g = BlockGrid::new(&[4, 8]);
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut blk = vec![0.0; 16];
        // block 1 covers columns 4..8 of all 4 rows
        g.gather(&data, 1, &mut blk);
        assert_eq!(blk[0], 4.0);
        assert_eq!(blk[4], 12.0);
    }

    #[test]
    #[should_panic(expected = "1-3 dims")]
    fn four_dims_rejected() {
        BlockGrid::new(&[2, 2, 2, 2]);
    }
}
