//! # pqr-zfp — transform-based progressive compression (ZFP stand-in)
//!
//! The paper's Definition 1 admits *any* error-controlled progressive
//! compressor, and names ZFP (reference \[4\]) alongside PMGARD as the two
//! families with a progressive-precision reconstruction feature. This crate
//! is the workspace's ZFP stand-in: a block-transform codec whose precision
//! streams progressively through globally aligned bitplanes.
//!
//! What the paper used → what we built → why the substitution preserves the
//! relevant behaviour:
//!
//! * **ZFP's lifted block transform** → an exactly reversible two-level
//!   S-transform in the same 4^d block/axis pattern ([`transform`]). Exact
//!   reversibility makes the full-fetch floor a pure fixed-point rounding
//!   bound, which the retrieval engine can model tightly.
//! * **ZFP's embedded group-testing coder** → negabinary digits
//!   ([`negabinary`]) regrouped into absolute bitplanes shared across
//!   blocks, RLE-compressed ([`stream`]). Same progression granularity
//!   (one plane ≈ one bit of precision per sample), same per-block-exponent
//!   adaptivity; absolute ratios differ from real ZFP, shapes do not.
//!
//! The [`ZfpStream`]/[`ZfpReader`] pair mirrors the MGARD substrate's
//! stream/reader contract, so `pqr-progressive` exposes it as just another
//! [`Scheme`] behind the engine.
//!
//! [`Scheme`]: https://docs.rs/pqr-progressive
//!
//! ## Quick example
//!
//! ```
//! use pqr_zfp::ZfpRefactorer;
//!
//! let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
//! let stream = ZfpRefactorer::new().refactor(&data, &[4096]).unwrap();
//! let mut reader = stream.reader();
//! reader.refine_to(1e-4).unwrap();
//! assert!(reader.guaranteed_bound() <= 1e-4);
//! let approx = reader.reconstruct();
//! assert_eq!(approx.len(), data.len());
//! ```

pub mod block;
pub mod negabinary;
pub mod stream;
pub mod transform;

pub use stream::{ZfpCursor, ZfpMeta, ZfpReader, ZfpRefactorer, ZfpStream, MAX_TOTAL_PLANES, Q};
