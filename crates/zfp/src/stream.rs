//! Progressive ZFP-style streams: refactoring, storage, and retrieval.
//!
//! ## Refactoring
//!
//! Each 4^d block is aligned to a per-block exponent `e_b` (the smallest
//! integer with `max|x| ≤ 2^{e_b}`), quantized to [`Q`]-bit fixed point,
//! decorrelated with the reversible transform of [`crate::transform`], and
//! mapped to negabinary digits. Digits are then regrouped into **global
//! absolute bitplanes**: plane `p` carries, for every block, the digit whose
//! absolute weight is `2^{A_max − p}` (blocks whose magnitude is small join
//! late and leave early — the per-block-exponent adaptivity that makes ZFP
//! effective on data with spatially varying scale). Each plane is one
//! independently fetchable segment, RLE-compressed.
//!
//! ## Error model
//!
//! After fetching `k` planes, every dropped digit of every block weighs at
//! most `2^{A_max − k}`, so each coefficient is off by strictly less than
//! `ε = 2^{A_max − k + 1}` (negabinary truncation, see
//! [`crate::negabinary`]). The inverse transform amplifies this by at most
//! [`recon_error_factor`], and fixed-point rounding adds at most
//! `0.5 · 2^{max_e − Q}`:
//!
//! ```text
//! L∞ ≤ recon_error_factor(d) · 2^{A_max + 1 − k}  +  0.75 · 2^{max_e − Q}
//! ```
//!
//! (the floor-term constant is 0.75 rather than 0.5 to absorb the f64
//! round-off of casting large partially-reconstructed integers; once every
//! plane is fetched the coefficients are *exact* integers and the bound
//! collapses to the pure rounding floor `0.5 · 2^{max_e − Q}` — roughly
//! `2^{-53}` relative, the same near-lossless floor as the PMGARD coder).

use crate::block::BlockGrid;
use crate::negabinary;
use crate::transform::{self, recon_error_factor};
use pqr_util::bitplane_simd::{deposit_bits, extract_bits, scalar_kernels, transpose64};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::par::{par_dynamic, par_dynamic_mut};
use pqr_util::rle;

/// Fixed-point fraction bits. 52 keeps `|q| ≤ 2^52 < 2^53`, so the scaled
/// values and their rounding are exact in `f64`.
pub const Q: i32 = 52;

/// Hard cap on the number of stored planes. Uncapped, a field whose blocks
/// span `Δe` binades needs `COEFF_BITS + Δe` planes; pathological dynamic
/// range (one block ~1e300, one ~1e-300) would explode that, so we stop at
/// 160 and fold the never-streamed tail into the error floor.
pub const MAX_TOTAL_PLANES: u32 = 160;

/// Exponent floor for block alignment: magnitudes below `2^-900` quantize
/// against this exponent instead of their own, keeping the fixed-point
/// scale factor `2^{Q − e}` finite. The rounding bound `0.5·2^{e−Q}` only
/// shrinks when `e` is clamped upward, so correctness is unaffected.
const MIN_EXPONENT: i32 = -900;

/// Sentinel for an all-zero block: stores nothing, reconstructs exactly.
const EMPTY: i32 = i32::MIN;

/// `2^e` without powi domain checks.
#[inline]
fn exp2(e: i32) -> f64 {
    f64::from(e).exp2()
}

/// A refactored ZFP-style progressive stream (archive-side artifact).
#[derive(Debug, Clone)]
pub struct ZfpStream {
    dims: Vec<usize>,
    /// Per-block alignment exponents ([`EMPTY`] for all-zero blocks).
    exponents: Vec<i32>,
    /// Largest exponent over non-empty blocks (meaningless if none).
    max_e: i32,
    /// Absolute weight exponent of plane 0 (`2^{a_max}`).
    a_max: i32,
    /// Negabinary digits per block coefficient.
    coeff_bits: u32,
    /// Whether [`MAX_TOTAL_PLANES`] truncated the plane ladder.
    capped: bool,
    /// Plane segments, most significant absolute plane first.
    planes: Vec<Vec<u8>>,
}

/// Refactors arrays into [`ZfpStream`]s.
///
/// Stateless today; a struct so configuration (alternative transforms,
/// plane caps) can land without an API break.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpRefactorer;

impl ZfpRefactorer {
    /// Creates a refactorer with default settings.
    pub fn new() -> Self {
        Self
    }

    /// Refactors `data` (shape `dims`, 1–3-D row-major) into a progressive
    /// stream. Rejects non-finite values: a NaN/Inf cannot be bounded by any
    /// L∞ ladder and would poison every block statistic downstream.
    pub fn refactor(&self, data: &[f64], dims: &[usize]) -> Result<ZfpStream> {
        self.refactor_with_workers(data, dims, 1)
    }

    /// [`ZfpRefactorer::refactor`] pinned to the scalar reference plane
    /// encoder regardless of `PQR_SCALAR_KERNELS` — the oracle the
    /// word-parallel and parallel-worker encodes are property-tested
    /// against.
    pub fn refactor_scalar(&self, data: &[f64], dims: &[usize]) -> Result<ZfpStream> {
        self.refactor_impl(data, dims, 1, true)
    }

    /// [`ZfpRefactorer::refactor`] with the per-block quantize/transform
    /// pass and the per-plane RLE encodes fanned out to `workers` threads
    /// (1 = exactly the serial loop). The stream is byte-identical at any
    /// worker count: block state is written positionally and each plane's
    /// RLE encode is independent.
    pub fn refactor_with_workers(
        &self,
        data: &[f64],
        dims: &[usize],
        workers: usize,
    ) -> Result<ZfpStream> {
        self.refactor_impl(data, dims, workers, scalar_kernels())
    }

    fn refactor_impl(
        &self,
        data: &[f64],
        dims: &[usize],
        workers: usize,
        scalar: bool,
    ) -> Result<ZfpStream> {
        if dims.is_empty() || dims.len() > 3 {
            return Err(PqrError::ShapeMismatch(format!(
                "zfp supports 1-3 dims, got {dims:?}"
            )));
        }
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "dims {dims:?} = {n} elements, data has {}",
                data.len()
            )));
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(PqrError::InvalidRequest(
                "zfp refactor requires finite data".into(),
            ));
        }
        let grid = BlockGrid::new(dims);
        let nd = grid.ndims();
        let blen = grid.block_len();
        let nblocks = grid.num_blocks();
        let coeff_bits =
            negabinary::digits_for_magnitude_bits(Q as u32 + transform::growth_bits(nd));

        // Pass 1: per-block fixed point + transform + negabinary. Blocks
        // are independent, so contiguous chunks of the exponent and digit
        // arrays fan out to workers; writes are positional, keeping the
        // result identical at any worker count.
        let mut exponents = vec![EMPTY; nblocks];
        let mut words = vec![0u64; nblocks * blen];
        let workers = workers.max(1).min(nblocks.max(1));
        let chunk_blocks = nblocks.div_ceil(workers);
        let mut chunks: Vec<(usize, &mut [i32], &mut [u64])> = Vec::with_capacity(workers);
        {
            let mut erest = exponents.as_mut_slice();
            let mut wrest = words.as_mut_slice();
            let mut start = 0usize;
            while start < nblocks {
                let take = chunk_blocks.min(nblocks - start);
                let (ehead, etail) = erest.split_at_mut(take);
                let (whead, wtail) = wrest.split_at_mut(take * blen);
                chunks.push((start, ehead, whead));
                erest = etail;
                wrest = wtail;
                start += take;
            }
        }
        let extremes = par_dynamic_mut(&mut chunks, workers, |_, chunk| {
            let (start, exps, wchunk) = chunk;
            let mut fblk = vec![0.0f64; blen];
            let mut iblk = vec![0i64; blen];
            let (mut max_e, mut min_e) = (i32::MIN, i32::MAX);
            for (off, exp_slot) in exps.iter_mut().enumerate() {
                grid.gather(data, *start + off, &mut fblk);
                let m = fblk.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
                if m == 0.0 {
                    continue;
                }
                let e = alignment_exponent(m);
                *exp_slot = e;
                max_e = max_e.max(e);
                min_e = min_e.min(e);
                let scale = exp2(Q - e);
                for (q, &x) in iblk.iter_mut().zip(fblk.iter()) {
                    *q = (x * scale).round() as i64;
                    debug_assert!(q.unsigned_abs() <= 1u64 << Q);
                }
                transform::forward(&mut iblk, nd);
                for (w, &c) in wchunk[off * blen..(off + 1) * blen]
                    .iter_mut()
                    .zip(iblk.iter())
                {
                    debug_assert!(c.unsigned_abs() < 1u64 << (coeff_bits - 1));
                    *w = negabinary::encode(c);
                }
            }
            (max_e, min_e)
        });
        drop(chunks);
        let mut max_e = i32::MIN;
        let mut min_e = i32::MAX;
        for (mx, mn) in extremes {
            max_e = max_e.max(mx);
            min_e = min_e.min(mn);
        }

        if max_e == i32::MIN {
            // all-zero field: nothing to stream, error identically 0
            return Ok(ZfpStream {
                dims: dims.to_vec(),
                exponents,
                max_e: 0,
                a_max: 0,
                coeff_bits,
                capped: false,
                planes: Vec::new(),
            });
        }

        let a_max = coeff_bits as i32 - 1 + max_e - Q;
        let uncapped = coeff_bits + (max_e - min_e) as u32;
        let p_total = uncapped.min(MAX_TOTAL_PLANES);
        let capped = uncapped > MAX_TOTAL_PLANES;

        // Pass 2: regroup digits into global absolute planes. Word-parallel
        // by default; `PQR_SCALAR_KERNELS=1` pins the scalar reference the
        // property tests compare against. The per-plane RLE encodes are
        // independent, so they fan out to the same workers.
        let geom = PlaneGeometry {
            blen,
            coeff_bits,
            a_max,
            p_total,
        };
        let planes = if scalar {
            encode_planes_scalar(&exponents, &words, &geom)
        } else {
            let (participants, bufs) = build_plane_bufs(&exponents, &words, &geom);
            par_dynamic(bufs.len(), workers, |p| {
                rle::encode_bits_auto_words(&bufs[p], participants[p] * blen)
            })
        };

        Ok(ZfpStream {
            dims: dims.to_vec(),
            exponents,
            max_e,
            a_max,
            coeff_bits,
            capped,
            planes,
        })
    }
}

/// Smallest `e` with `m ≤ 2^e`, floored at [`MIN_EXPONENT`].
fn alignment_exponent(m: f64) -> i32 {
    debug_assert!(m > 0.0 && m.is_finite());
    let mut e = m.log2().ceil() as i32;
    // log2 float slack: enforce the invariant exactly
    while m > exp2(e) {
        e += 1;
    }
    while e > MIN_EXPONENT && m <= exp2(e - 1) {
        e -= 1;
    }
    e.max(MIN_EXPONENT)
}

/// Maps a block exponent to its compact i16 wire form. Exponents of f64
/// data live in `[MIN_EXPONENT, ~1025]`, comfortably inside i16; the
/// [`EMPTY`] sentinel maps to `i16::MIN`.
#[inline]
fn exponent_to_i16(e: i32) -> i16 {
    if e == EMPTY {
        i16::MIN
    } else {
        debug_assert!((MIN_EXPONENT..=1100).contains(&e));
        e as i16
    }
}

/// Inverse of [`exponent_to_i16`].
#[inline]
fn exponent_from_i16(v: i16) -> i32 {
    if v == i16::MIN {
        EMPTY
    } else {
        i32::from(v)
    }
}

/// The digit index of block-exponent `e` holding absolute weight `2^{a}`,
/// or `None` if the block has no such digit ([`EMPTY`] blocks never do).
#[inline]
fn digit_index(a: i32, e: i32, coeff_bits: u32) -> Option<u32> {
    if e == EMPTY {
        return None;
    }
    let j = a - (e - Q);
    (0..coeff_bits as i32).contains(&j).then_some(j as u32)
}

/// The plane-ladder geometry shared by the plane encoders.
struct PlaneGeometry {
    /// Coefficients per block (`4^d`).
    blen: usize,
    /// Negabinary digits per coefficient.
    coeff_bits: u32,
    /// Absolute weight exponent of plane 0.
    a_max: i32,
    /// Stored plane count (post-cap).
    p_total: u32,
}

/// The scalar reference plane regrouping: one coefficient bit per step.
/// Kept callable so tests and benches can assert/measure the word-parallel
/// path against it.
fn encode_planes_scalar(exponents: &[i32], words: &[u64], geom: &PlaneGeometry) -> Vec<Vec<u8>> {
    let blen = geom.blen;
    let mut planes = Vec::with_capacity(geom.p_total as usize);
    let mut bits: Vec<bool> = Vec::new();
    for p in 0..geom.p_total {
        bits.clear();
        let a_p = geom.a_max - p as i32;
        for (b, &e) in exponents.iter().enumerate() {
            let Some(j) = digit_index(a_p, e, geom.coeff_bits) else {
                continue;
            };
            for &w in &words[b * blen..(b + 1) * blen] {
                bits.push((w >> j) & 1 == 1);
            }
        }
        planes.push(rle::encode_bits_auto(&bits));
    }
    planes
}

/// Word-parallel plane regrouping — the RLE encode of each returned buffer
/// is byte-identical to [`encode_planes_scalar`]'s corresponding plane.
///
/// Runs block-major instead of plane-major: groups of `64 / blen`
/// consecutive blocks share one [`transpose64`] tile that yields every
/// digit row of every block in the group at once, and each row (the
/// `blen`-bit slice a block contributes to one plane) is deposited at that
/// plane's running bit cursor. A block's digits occupy a contiguous plane
/// interval, so per-plane participant counts — and therefore the exact
/// buffer sizes and deposit order — fall out of a histogram over those
/// intervals without ever touching payload bits.
fn build_plane_bufs(
    exponents: &[i32],
    words: &[u64],
    geom: &PlaneGeometry,
) -> (Vec<usize>, Vec<Vec<u64>>) {
    let blen = geom.blen;
    let coeff_bits = geom.coeff_bits as usize;
    let p_total = geom.p_total as usize;
    let participants = plane_participants(exponents, geom);
    let mut bufs: Vec<Vec<u64>> = participants
        .iter()
        .map(|&c| vec![0u64; (c * blen).div_ceil(64)])
        .collect();
    let mut cursors = vec![0usize; p_total];

    let group = 64 / blen; // blen ∈ {4, 16, 64}
    let row_mask = if blen == 64 {
        u64::MAX
    } else {
        (1u64 << blen) - 1
    };
    let nblocks = exponents.len();
    let mut tile = [0u64; 64];
    let mut b0 = 0usize;
    while b0 < nblocks {
        let gend = (b0 + group).min(nblocks);
        if exponents[b0..gend].iter().all(|&e| e == EMPTY) {
            b0 = gend; // all-zero region: nothing participates
            continue;
        }
        tile.fill(0);
        for (g, b) in (b0..gend).enumerate() {
            tile[g * blen..g * blen + blen].copy_from_slice(&words[b * blen..(b + 1) * blen]);
        }
        transpose64(&mut tile);
        // tile[j] bit (g·blen + s) is digit j of block b0+g, coefficient s
        for (g, b) in (b0..gend).enumerate() {
            let e = exponents[b];
            if e == EMPTY {
                continue;
            }
            let base_p = geom.a_max - (e - Q); // digit j lands in plane base_p − j
            for (j, &row_word) in tile.iter().enumerate().take(coeff_bits) {
                let p = base_p - j as i32;
                if p < 0 || p >= p_total as i32 {
                    continue; // capped (or never-stored) plane
                }
                let p = p as usize;
                deposit_bits(
                    &mut bufs[p],
                    cursors[p],
                    (row_word >> (g * blen)) & row_mask,
                    blen,
                );
                cursors[p] += blen;
            }
        }
        b0 = gend;
    }
    (participants, bufs)
}

/// Everything a decoder must hold *before* any plane payload arrives:
/// shape, per-block exponents, the plane-ladder geometry and the stored
/// plane count. This is the stream minus its plane payloads — the unit a
/// fragment-addressed store serves as the field's metadata fragment, and
/// what [`ZfpCursor`] decodes against while plane bytes are pushed in from
/// elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ZfpMeta {
    dims: Vec<usize>,
    exponents: Vec<i32>,
    max_e: i32,
    a_max: i32,
    coeff_bits: u32,
    capped: bool,
    num_planes: u32,
}

/// The shared error model: guaranteed L∞ bound after `k` fetched planes.
fn bound_after_impl(
    nd: usize,
    num_planes: u32,
    capped: bool,
    max_e: i32,
    a_max: i32,
    k: u32,
) -> f64 {
    if num_planes == 0 {
        return 0.0; // all-zero field
    }
    let rounding = 0.5 * exp2(max_e - Q);
    if !capped && k >= num_planes {
        // every digit fetched ⇒ integer-exact coefficients
        return rounding * (1.0 + 1e-12);
    }
    let trunc = recon_error_factor(nd) * exp2(a_max + 1 - k.min(num_planes) as i32);
    (trunc + 1.5 * rounding) * (1.0 + 1e-12)
}

impl ZfpMeta {
    /// Array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored plane segments.
    pub fn num_planes(&self) -> u32 {
        self.num_planes
    }

    /// The guaranteed L∞ bound after `k` fetched planes.
    pub fn bound_after(&self, k: u32) -> f64 {
        bound_after_impl(
            self.dims.len(),
            self.num_planes,
            self.capped,
            self.max_e,
            self.a_max,
            k,
        )
    }

    /// Serializes the metadata (the field's always-fetched fragment).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(b"PQZM");
        w.put_u8(self.dims.len() as u8);
        for &d in &self.dims {
            w.put_u64(d as u64);
        }
        w.put_i64(i64::from(self.max_e));
        w.put_i64(i64::from(self.a_max));
        w.put_u32(self.coeff_bits);
        w.put_u8(u8::from(self.capped));
        w.put_bytes(&encode_exponent_table(&self.exponents));
        w.put_u32(self.num_planes);
        w.finish()
    }

    /// Deserializes metadata, enforcing the same structural invariants as
    /// [`ZfpStream::from_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4)? != b"PQZM" {
            return Err(PqrError::CorruptStream("bad zfp meta magic".into()));
        }
        let (dims, max_e, a_max, coeff_bits, capped, exponents) = read_header(&mut r)?;
        let num_planes = r.get_u32()?;
        if num_planes > MAX_TOTAL_PLANES {
            return Err(PqrError::CorruptStream(format!("{num_planes} planes")));
        }
        if r.remaining() != 0 {
            return Err(PqrError::CorruptStream("trailing zfp meta bytes".into()));
        }
        Ok(Self {
            dims,
            exponents,
            max_e,
            a_max,
            coeff_bits,
            capped,
            num_planes,
        })
    }
}

/// Delta-codes + RLE-compresses the per-block exponent table (see
/// [`ZfpStream::to_bytes`] for why the deltas compress well).
fn encode_exponent_table(exponents: &[i32]) -> Vec<u8> {
    let mut eb = Vec::with_capacity(exponents.len() * 2);
    let mut prev = 0i16;
    for &e in exponents {
        let cur = exponent_to_i16(e);
        eb.extend_from_slice(&cur.wrapping_sub(prev).to_le_bytes());
        prev = cur;
    }
    rle::encode_bytes(&eb)
}

/// Reads the shared zfp header body (everything between the magic and the
/// plane section), validating dims and the exponent table length.
type HeaderParts = (Vec<usize>, i32, i32, u32, bool, Vec<i32>);
fn read_header(r: &mut ByteReader<'_>) -> Result<HeaderParts> {
    let nd = r.get_u8()? as usize;
    if !(1..=3).contains(&nd) {
        return Err(PqrError::CorruptStream(format!("zfp ndims {nd}")));
    }
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        dims.push(r.get_u64()? as usize);
    }
    let max_e = i32::try_from(r.get_i64()?)
        .map_err(|_| PqrError::CorruptStream("max_e out of range".into()))?;
    let a_max = i32::try_from(r.get_i64()?)
        .map_err(|_| PqrError::CorruptStream("a_max out of range".into()))?;
    let coeff_bits = r.get_u32()?;
    if coeff_bits == 0 || coeff_bits > 64 {
        return Err(PqrError::CorruptStream(format!("coeff_bits {coeff_bits}")));
    }
    let capped = r.get_u8()? != 0;
    // Hostile dims must not overflow the block/element products (the
    // exponent-table length check below bounds the real size, but only
    // if `num_blocks * 2` itself cannot panic first).
    pqr_util::byteio::check_dims(&dims)?;
    let grid = BlockGrid::new(&dims);
    let eb = rle::decode_bytes(r.get_bytes()?)?;
    if eb.len() != grid.num_blocks() * 2 {
        return Err(PqrError::CorruptStream(format!(
            "exponent table {} B for {} blocks",
            eb.len(),
            grid.num_blocks()
        )));
    }
    let mut prev = 0i16;
    let exponents: Vec<i32> = eb
        .chunks_exact(2)
        .map(|c| {
            let d = i16::from_le_bytes(c.try_into().unwrap());
            prev = prev.wrapping_add(d);
            exponent_from_i16(prev)
        })
        .collect();
    Ok((dims, max_e, a_max, coeff_bits, capped, exponents))
}

impl ZfpStream {
    /// Array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The stream's metadata — everything except the plane payloads.
    pub fn meta(&self) -> ZfpMeta {
        ZfpMeta {
            dims: self.dims.clone(),
            exponents: self.exponents.clone(),
            max_e: self.max_e,
            a_max: self.a_max,
            coeff_bits: self.coeff_bits,
            capped: self.capped,
            num_planes: self.planes.len() as u32,
        }
    }

    /// Reassembles a stream from metadata plus the plane payloads in fetch
    /// order — the inverse of splitting a stream into fragments.
    pub fn from_parts(meta: ZfpMeta, planes: Vec<Vec<u8>>) -> Result<Self> {
        if planes.len() != meta.num_planes as usize {
            return Err(PqrError::CorruptStream(format!(
                "{} plane payloads for metadata declaring {}",
                planes.len(),
                meta.num_planes
            )));
        }
        Ok(Self {
            dims: meta.dims,
            exponents: meta.exponents,
            max_e: meta.max_e,
            a_max: meta.a_max,
            coeff_bits: meta.coeff_bits,
            capped: meta.capped,
            planes,
        })
    }

    /// Number of stored plane segments.
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// Sizes of the individually fetchable plane segments, in fetch order.
    pub fn segment_sizes(&self) -> Vec<usize> {
        self.planes.iter().map(Vec::len).collect()
    }

    /// The plane payloads in fetch order — the order
    /// [`ZfpStream::from_parts`] reassembles.
    pub fn plane_payloads(&self) -> impl Iterator<Item = &[u8]> {
        self.planes.iter().map(Vec::as_slice)
    }

    /// The `i`-th plane payload in fetch order, addressed in O(1).
    pub fn plane(&self, i: usize) -> Option<&[u8]> {
        self.planes.get(i).map(Vec::as_slice)
    }

    /// Serialized metadata size: everything a reader must hold before the
    /// first plane arrives (header + per-block exponents).
    pub fn metadata_bytes(&self) -> usize {
        self.to_bytes().len() - self.planes.iter().map(Vec::len).sum::<usize>()
    }

    /// Total archived bytes.
    pub fn total_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Opens a progressive reader at zero fetched planes.
    pub fn reader(&self) -> ZfpReader<'_> {
        ZfpReader {
            stream: self,
            cursor: ZfpCursor::new(self.meta()),
            fetched: self.metadata_bytes(),
        }
    }

    /// The guaranteed L∞ bound after `k` fetched planes — the model the
    /// retrieval engine consumes as the primary-data ε.
    pub fn bound_after(&self, k: u32) -> f64 {
        bound_after_impl(
            self.dims.len(),
            self.planes.len() as u32,
            self.capped,
            self.max_e,
            self.a_max,
            k,
        )
    }

    /// Serializes the stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(b"PQRZ");
        w.put_u8(self.dims.len() as u8);
        for &d in &self.dims {
            w.put_u64(d as u64);
        }
        w.put_i64(i64::from(self.max_e));
        w.put_i64(i64::from(self.a_max));
        w.put_u32(self.coeff_bits);
        w.put_u8(u8::from(self.capped));
        // Exponents as delta-coded i16: neighbouring blocks of smooth data
        // share exponents, so the delta stream is mostly zero bytes and the
        // byte-RLE collapses the table to a few bytes per long run — the
        // per-block metadata tax matters for 1-D data (one block per 4
        // samples).
        w.put_bytes(&encode_exponent_table(&self.exponents));
        w.put_u32(self.planes.len() as u32);
        for p in &self.planes {
            w.put_bytes(p);
        }
        w.finish()
    }

    /// Deserializes a stream, validating structural invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4)? != b"PQRZ" {
            return Err(PqrError::CorruptStream("bad zfp magic".into()));
        }
        let (dims, max_e, a_max, coeff_bits, capped, exponents) = read_header(&mut r)?;
        let np = r.get_u32()?;
        if np > MAX_TOTAL_PLANES {
            return Err(PqrError::CorruptStream(format!("{np} planes")));
        }
        let mut planes = Vec::with_capacity(np as usize);
        for _ in 0..np {
            planes.push(r.get_bytes()?.to_vec());
        }
        Ok(Self {
            dims,
            exponents,
            max_e,
            a_max,
            coeff_bits,
            capped,
            planes,
        })
    }
}

/// Push-based progressive decoder over [`ZfpMeta`].
///
/// A cursor holds only the stream's *metadata* plus accumulated digit
/// words — it never sees where the plane payloads live. Planes are strictly
/// ordered (most significant absolute plane first), so the owner fetches
/// plane `planes_read()` from wherever the stream is stored and pushes its
/// bytes in with [`ZfpCursor::push_plane`]. The borrowing [`ZfpReader`]
/// and the fragment-addressed sources in `pqr-progressive` both drive the
/// same cursor, so the error model cannot drift between local and remote
/// paths.
#[derive(Debug, Clone)]
pub struct ZfpCursor {
    meta: ZfpMeta,
    grid: BlockGrid,
    state: DecodeState,
    planes_read: u32,
}

/// How a [`ZfpCursor`] accumulates pushed planes.
///
/// The scalar reference scatters every plane straight into block-major
/// digit words, touching `O(participants × blen)` bits per push. The word
/// path keeps each decoded plane in its packed plane-major form — a push is
/// just the RLE word decode, `O(payload)` — and regroups the whole bit
/// matrix block-major in one [`transpose64`] sweep only when a
/// reconstruction is requested.
#[derive(Debug, Clone)]
enum DecodeState {
    /// Scalar oracle: digits accumulate straight into block-major words
    /// (`num_blocks × block_len`).
    Scalar { words: Vec<u64> },
    /// Word path: decoded packed plane payloads, plane-major.
    Words {
        /// Per-plane participating block counts, from the same interval
        /// histogram [`build_plane_bufs`] sizes its buffers with.
        participants: Vec<usize>,
        /// Packed plane bits (`participants[p] × blen` bits each), in
        /// push order.
        planes: Vec<Vec<u64>>,
    },
}

/// Per-plane participating-block counts over `0..p_total`: block `b`
/// contributes one `blen`-bit row to plane `p` iff `p` lies in the block's
/// digit interval. Shared by the word-parallel encoder (buffer sizing) and
/// the word-parallel cursor (payload lengths), and provably equal to the
/// scalar paths' per-plane participant enumeration.
fn plane_participants(exponents: &[i32], geom: &PlaneGeometry) -> Vec<usize> {
    let p_total = geom.p_total as usize;
    let mut diff = vec![0i64; p_total + 1];
    for &e in exponents {
        if e == EMPTY {
            continue;
        }
        let hi = (geom.a_max - (e - Q)).min(p_total as i32 - 1);
        let lo = (geom.a_max - (e - Q) - (geom.coeff_bits as i32 - 1)).max(0);
        if lo <= hi {
            diff[lo as usize] += 1;
            diff[hi as usize + 1] -= 1;
        }
    }
    let mut participants = vec![0usize; p_total];
    let mut acc = 0i64;
    for (p, slot) in participants.iter_mut().enumerate() {
        acc += diff[p];
        *slot = acc as usize;
    }
    participants
}

impl ZfpCursor {
    /// Creates a cursor at zero consumed planes, using the word-parallel
    /// plane decode (scalar under `PQR_SCALAR_KERNELS=1`).
    pub fn new(meta: ZfpMeta) -> Self {
        Self::with_mode(meta, scalar_kernels())
    }

    /// Creates a cursor pinned to the scalar reference decode path — the
    /// oracle the word-parallel kernel is property-tested against. The
    /// accumulated state and reconstructions are bit-identical either way.
    pub fn new_scalar(meta: ZfpMeta) -> Self {
        Self::with_mode(meta, true)
    }

    fn with_mode(meta: ZfpMeta, scalar: bool) -> Self {
        let grid = BlockGrid::new(&meta.dims);
        let state = if scalar {
            DecodeState::Scalar {
                words: vec![0u64; grid.num_blocks() * grid.block_len()],
            }
        } else {
            let geom = PlaneGeometry {
                blen: grid.block_len(),
                coeff_bits: meta.coeff_bits,
                a_max: meta.a_max,
                p_total: meta.num_planes,
            };
            DecodeState::Words {
                participants: plane_participants(&meta.exponents, &geom),
                planes: Vec::with_capacity(meta.num_planes as usize),
            }
        };
        Self {
            meta,
            grid,
            state,
            planes_read: 0,
        }
    }

    /// The metadata this cursor decodes against.
    pub fn meta(&self) -> &ZfpMeta {
        &self.meta
    }

    /// Guaranteed L∞ bound of [`ZfpCursor::reconstruct`] at the current
    /// state.
    pub fn guaranteed_bound(&self) -> f64 {
        self.meta.bound_after(self.planes_read)
    }

    /// True when every stored plane has been consumed.
    pub fn fully_fetched(&self) -> bool {
        self.planes_read >= self.meta.num_planes
    }

    /// Planes consumed so far — also the index of the next wanted plane.
    pub fn planes_read(&self) -> u32 {
        self.planes_read
    }

    /// Consumes the next plane's bytes (planes must arrive in order; the
    /// plane index is implicit in the decode state).
    pub fn push_plane(&mut self, bytes: &[u8]) -> Result<()> {
        if self.fully_fetched() {
            return Err(PqrError::InvalidRequest(
                "zfp stream already fully fetched".into(),
            ));
        }
        let blen = self.grid.block_len();
        let p = self.planes_read as usize;
        match &mut self.state {
            DecodeState::Scalar { words } => {
                // which blocks participate, in order, and their digit index
                let a_p = self.meta.a_max - p as i32;
                let mut participants = Vec::new();
                for (b, &e) in self.meta.exponents.iter().enumerate() {
                    if let Some(j) = digit_index(a_p, e, self.meta.coeff_bits) {
                        participants.push((b, j));
                    }
                }
                let bits = rle::decode_bits_auto(bytes, participants.len() * blen)?;
                for (pi, &(b, j)) in participants.iter().enumerate() {
                    let base = b * blen;
                    for (s, &bit) in bits[pi * blen..(pi + 1) * blen].iter().enumerate() {
                        if bit {
                            words[base + s] |= 1u64 << j;
                        }
                    }
                }
            }
            DecodeState::Words {
                participants,
                planes,
            } => {
                // word path: a push is just the RLE word decode — the plane
                // stays plane-major until a reconstruction regroups the
                // whole matrix in one transpose sweep
                let plane = rle::decode_bits_auto_words(bytes, participants[p] * blen)?;
                planes.push(plane);
            }
        }
        self.planes_read += 1;
        Ok(())
    }

    /// The accumulated negabinary digit words, block-major
    /// (`num_blocks × block_len`) — identical between the scalar and
    /// word-parallel cursors at every plane depth, which is exactly what
    /// the cross-check suites assert.
    pub fn digit_words(&self) -> Vec<u64> {
        self.digit_words_cow().into_owned()
    }

    /// Block-major digit words without cloning the scalar state.
    fn digit_words_cow(&self) -> std::borrow::Cow<'_, [u64]> {
        match &self.state {
            DecodeState::Scalar { words } => std::borrow::Cow::Borrowed(words),
            DecodeState::Words { planes, .. } => {
                std::borrow::Cow::Owned(self.regroup_words(planes))
            }
        }
    }

    /// The inverse of the [`build_plane_bufs`] regrouping sweep: walks
    /// groups of `64 / blen` blocks, rebuilds each group's digit-major
    /// 64×64 tile by pulling one packed row per (block, digit) from the
    /// pushed planes' running bit cursors, and transposes the tile back to
    /// coefficient-major digit words. Planes beyond `planes_read` simply
    /// contribute zero digits — per-plane cursors make the skip free.
    ///
    /// Groups whose blocks all share one exponent (the common case on
    /// smooth data) collapse to a single 64-bit extract per digit row.
    fn regroup_words(&self, planes: &[Vec<u64>]) -> Vec<u64> {
        let blen = self.grid.block_len();
        let coeff_bits = self.meta.coeff_bits as usize;
        let p_total = self.meta.num_planes as i32;
        let k = planes.len();
        let exponents = &self.meta.exponents;
        let nblocks = exponents.len();
        let mut words = vec![0u64; nblocks * blen];
        let mut cursors = vec![0usize; k];
        let group = 64 / blen; // blen ∈ {4, 16, 64}
        let mut tile = [0u64; 64];
        let mut b0 = 0usize;
        while b0 < nblocks {
            let gend = (b0 + group).min(nblocks);
            if exponents[b0..gend].iter().all(|&e| e == EMPTY) {
                b0 = gend; // all-zero region: no digits anywhere
                continue;
            }
            tile.fill(0);
            if gend - b0 == group && exponents[b0 + 1..gend].iter().all(|&e| e == exponents[b0]) {
                // uniform full group: every block maps digit j to the same
                // plane, and the group's 64 bits sit contiguously there
                let base_p = self.meta.a_max - (exponents[b0] - Q);
                for (j, row) in tile.iter_mut().enumerate().take(coeff_bits) {
                    let p = base_p - j as i32;
                    if p < 0 || p >= p_total {
                        continue;
                    }
                    let p = p as usize;
                    if p >= k {
                        continue; // plane not pushed yet
                    }
                    *row = extract_bits(&planes[p], cursors[p], 64);
                    cursors[p] += 64;
                }
            } else {
                for (g, b) in (b0..gend).enumerate() {
                    let e = exponents[b];
                    if e == EMPTY {
                        continue;
                    }
                    let base_p = self.meta.a_max - (e - Q);
                    for (j, row) in tile.iter_mut().enumerate().take(coeff_bits) {
                        let p = base_p - j as i32;
                        if p < 0 || p >= p_total {
                            continue;
                        }
                        let p = p as usize;
                        if p >= k {
                            continue;
                        }
                        *row |= extract_bits(&planes[p], cursors[p], blen) << (g * blen);
                        cursors[p] += blen;
                    }
                }
            }
            transpose64(&mut tile);
            // tile[g·blen + s] now holds the digit word of block b0+g,
            // coefficient s
            for (g, b) in (b0..gend).enumerate() {
                words[b * blen..(b + 1) * blen].copy_from_slice(&tile[g * blen..(g + 1) * blen]);
            }
            b0 = gend;
        }
        words
    }

    /// Reconstructs the data representation from the planes consumed so far.
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.reconstruct_into(&mut out, 1);
        out
    }

    /// [`ZfpCursor::reconstruct`] into a caller-provided (pooled) buffer
    /// with the per-block decode + inverse transform fanned across
    /// `workers` threads. Blocks are independent and scatter to disjoint
    /// array regions, and each block's arithmetic is unchanged, so the
    /// result is bit-identical at every worker count (`workers <= 1` and
    /// `PQR_SCALAR_KERNELS=1` run the exact serial loop).
    pub fn reconstruct_into(&self, out: &mut Vec<f64>, workers: usize) {
        let words = self.digit_words_cow();
        let n = self.grid.num_elements();
        out.clear();
        out.resize(n, 0.0);
        let nblocks = self.meta.exponents.len();
        let blen = self.grid.block_len();
        let workers = if scalar_kernels() { 1 } else { workers.max(1) };
        if workers <= 1 || n < 4096 {
            // serial path with per-block scratch hoisted out of the loop
            let mut iblk = vec![0i64; blen];
            let mut fblk = vec![0.0f64; blen];
            for b in 0..nblocks {
                if self.decode_block(&words, b, &mut iblk, &mut fblk) {
                    self.grid.scatter(out, b, &fblk);
                }
            }
            return;
        }
        // fan out chunks of consecutive blocks; scatter serially (block
        // regions are disjoint, so the write order is immaterial)
        let chunk = nblocks.div_ceil(workers * 4).max(1);
        let nchunks = nblocks.div_ceil(chunk);
        let words_ref: &[u64] = &words;
        let decoded = par_dynamic(nchunks, workers, |ci| {
            let b0 = ci * chunk;
            let b1 = ((ci + 1) * chunk).min(nblocks);
            let mut buf = vec![0.0f64; (b1 - b0) * blen];
            let mut iblk = vec![0i64; blen];
            let mut any = false;
            for b in b0..b1 {
                let fblk = &mut buf[(b - b0) * blen..(b - b0 + 1) * blen];
                any |= self.decode_block(words_ref, b, &mut iblk, fblk);
            }
            any.then_some(buf)
        });
        for (ci, buf) in decoded.iter().enumerate() {
            let Some(buf) = buf else { continue };
            let b0 = ci * chunk;
            let b1 = ((ci + 1) * chunk).min(nblocks);
            for b in b0..b1 {
                if self.meta.exponents[b] != EMPTY {
                    self.grid
                        .scatter(out, b, &buf[(b - b0) * blen..(b - b0 + 1) * blen]);
                }
            }
        }
    }

    /// Decodes one block of the block-major digit `words` into `fblk`
    /// (length `block_len`), using `iblk` as integer scratch. Returns
    /// `false` (leaving `fblk` untouched) for all-zero blocks.
    fn decode_block(&self, words: &[u64], b: usize, iblk: &mut [i64], fblk: &mut [f64]) -> bool {
        let e = self.meta.exponents[b];
        if e == EMPTY {
            return false;
        }
        let blen = self.grid.block_len();
        let nd = self.grid.ndims();
        for (c, &w) in iblk.iter_mut().zip(&words[b * blen..(b + 1) * blen]) {
            *c = negabinary::decode(w);
        }
        transform::inverse(iblk, nd);
        let scale = exp2(e - Q);
        for (f, &q) in fblk.iter_mut().zip(iblk.iter()) {
            *f = q as f64 * scale;
        }
        true
    }

    /// Decodes one block of the block-major digit `words` into `out`
    /// (full-array buffer). All-zero blocks are skipped — `out` is expected
    /// to be zero there already.
    fn reconstruct_block_into(&self, words: &[u64], b: usize, out: &mut [f64]) {
        let blen = self.grid.block_len();
        let mut iblk = vec![0i64; blen];
        let mut fblk = vec![0.0f64; blen];
        if self.decode_block(words, b, &mut iblk, &mut fblk) {
            self.grid.scatter(out, b, &fblk);
        }
    }
}

/// Progressive reader over a [`ZfpStream`]: a [`ZfpCursor`] whose plane
/// fetches are served from the borrowed, fully resident stream.
///
/// Byte accounting starts at the stream's metadata size (a remote retrieval
/// always moves the header and exponent table first).
#[derive(Debug, Clone)]
pub struct ZfpReader<'a> {
    stream: &'a ZfpStream,
    cursor: ZfpCursor,
    fetched: usize,
}

impl ZfpReader<'_> {
    /// Guaranteed L∞ bound of [`ZfpReader::reconstruct`] at the current
    /// fetch state.
    pub fn guaranteed_bound(&self) -> f64 {
        self.cursor.guaranteed_bound()
    }

    /// Total bytes this reader has "moved" (metadata + fetched planes).
    pub fn total_fetched(&self) -> usize {
        self.fetched
    }

    /// True when every stored plane has been fetched.
    pub fn fully_fetched(&self) -> bool {
        self.cursor.fully_fetched()
    }

    /// Planes consumed so far — the reader's resumable progress marker
    /// (restore with [`ZfpReader::fetch_planes`] on a fresh reader).
    pub fn planes_read(&self) -> u32 {
        self.cursor.planes_read()
    }

    /// Fetches planes in order until the guaranteed bound is ≤ `eb` or the
    /// stream is exhausted. Returns newly fetched bytes.
    pub fn refine_to(&mut self, eb: f64) -> Result<usize> {
        if eb < 0.0 || eb.is_nan() {
            return Err(PqrError::InvalidRequest(format!("bad error bound {eb}")));
        }
        let mut newly = 0;
        while self.guaranteed_bound() > eb && !self.fully_fetched() {
            newly += self.push_next_plane()?;
        }
        Ok(newly)
    }

    /// Fetches `k` more planes regardless of a target — fixed-budget mode.
    pub fn fetch_planes(&mut self, k: usize) -> Result<usize> {
        let mut newly = 0;
        for _ in 0..k {
            if self.fully_fetched() {
                break;
            }
            newly += self.push_next_plane()?;
        }
        Ok(newly)
    }

    fn push_next_plane(&mut self) -> Result<usize> {
        let seg = &self.stream.planes[self.cursor.planes_read() as usize];
        self.cursor.push_plane(seg)?;
        self.fetched += seg.len();
        Ok(seg.len())
    }

    /// Reconstructs the data representation from the planes fetched so far.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.cursor.reconstruct()
    }

    /// Reconstructs only the axis-aligned region `lo[a]..hi[a]` (half-open
    /// per axis), returning it as a dense row-major array of shape
    /// `hi[a] − lo[a]`.
    ///
    /// This is the ZFP-signature **random access** property: only the 4^d
    /// blocks intersecting the region are decoded, so the compute cost
    /// scales with the region, not the array. The precision (and therefore
    /// the error bound, [`ZfpReader::guaranteed_bound`]) is whatever the
    /// fetched planes provide — region decoding composes with progressive
    /// precision.
    ///
    /// ```
    /// use pqr_zfp::ZfpRefactorer;
    /// let data: Vec<f64> = (0..400).map(|i| (i as f64 * 0.1).sin()).collect();
    /// let stream = ZfpRefactorer::new().refactor(&data, &[20, 20]).unwrap();
    /// let mut reader = stream.reader();
    /// reader.refine_to(1e-6).unwrap();
    /// let window = reader.reconstruct_region(&[5, 5], &[9, 15]).unwrap();
    /// assert_eq!(window.len(), 4 * 10);
    /// assert!((window[0] - data[5 * 20 + 5]).abs() <= reader.guaranteed_bound());
    /// ```
    pub fn reconstruct_region(&self, lo: &[usize], hi: &[usize]) -> Result<Vec<f64>> {
        self.cursor.reconstruct_region(lo, hi)
    }
}

impl ZfpCursor {
    /// Region decode at the current precision — see
    /// [`ZfpReader::reconstruct_region`] for the semantics.
    pub fn reconstruct_region(&self, lo: &[usize], hi: &[usize]) -> Result<Vec<f64>> {
        let dims = self.meta.dims.clone();
        if lo.len() != dims.len() || hi.len() != dims.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "region rank {} vs array rank {}",
                lo.len(),
                dims.len()
            )));
        }
        for a in 0..dims.len() {
            if lo[a] > hi[a] || hi[a] > dims[a] {
                return Err(PqrError::InvalidRequest(format!(
                    "region {}..{} out of bounds for axis {a} (dim {})",
                    lo[a], hi[a], dims[a]
                )));
            }
        }
        // Decode the intersecting blocks into a scratch full-array buffer,
        // then copy the window out. The scratch is O(array) in memory but
        // only the touched blocks cost transform compute; the word-parallel
        // cursor additionally pays one O(bit-matrix / 64) regrouping sweep
        // per call. A production variant would scatter straight into the
        // window.
        let words = self.digit_words_cow();
        let mut scratch = vec![0.0f64; self.grid.num_elements()];
        let nd = dims.len();
        let mut bc_lo = vec![0usize; nd];
        let mut bc_hi = vec![0usize; nd];
        for a in 0..nd {
            bc_lo[a] = lo[a] / crate::block::SIDE;
            bc_hi[a] = hi[a].div_ceil(crate::block::SIDE).max(bc_lo[a] + 1);
        }
        // iterate block coordinates in the window
        let mut bc = bc_lo.clone();
        'blocks: loop {
            // row-major block index
            let mut b = 0usize;
            for (&nblocks, &c) in self.grid.blocks.iter().zip(&bc) {
                b = b * nblocks + c;
            }
            self.reconstruct_block_into(&words, b, &mut scratch);
            let mut a = nd;
            loop {
                if a == 0 {
                    break 'blocks;
                }
                a -= 1;
                bc[a] += 1;
                if bc[a] < bc_hi[a].min(self.grid.blocks[a]) {
                    break;
                }
                bc[a] = bc_lo[a];
            }
        }
        // copy the window
        let window: Vec<usize> = (0..nd).map(|a| hi[a] - lo[a]).collect();
        let wn: usize = window.iter().product();
        let mut out = Vec::with_capacity(wn);
        let mut strides = vec![1usize; nd];
        for a in (0..nd.saturating_sub(1)).rev() {
            strides[a] = strides[a + 1] * dims[a + 1];
        }
        let mut coord = vec![0usize; nd];
        if wn > 0 {
            'copy: loop {
                let idx: usize = (0..nd).map(|a| (lo[a] + coord[a]) * strides[a]).sum();
                out.push(scratch[idx]);
                let mut a = nd;
                loop {
                    if a == 0 {
                        break 'copy;
                    }
                    a -= 1;
                    coord[a] += 1;
                    if coord[a] < window[a] {
                        break;
                    }
                    coord[a] = 0;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_util::stats::max_abs_diff;

    fn field(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x * 11.0).sin() * 2.5 + (x * 41.0).cos() * 0.3 - 1.7 * x
            })
            .collect()
    }

    /// Rebuilds a stream's planes through the scalar reference encoder.
    fn scalar_planes(data: &[f64], dims: &[usize]) -> Vec<Vec<u8>> {
        // re-run pass 1 to recover the intermediate words/exponents
        let grid = BlockGrid::new(dims);
        let (nd, blen) = (grid.ndims(), grid.block_len());
        let coeff_bits =
            negabinary::digits_for_magnitude_bits(Q as u32 + transform::growth_bits(nd));
        let mut exponents = vec![EMPTY; grid.num_blocks()];
        let mut words = vec![0u64; grid.num_blocks() * blen];
        let mut fblk = vec![0.0f64; blen];
        let mut iblk = vec![0i64; blen];
        let (mut max_e, mut min_e) = (i32::MIN, i32::MAX);
        for b in 0..grid.num_blocks() {
            grid.gather(data, b, &mut fblk);
            let m = fblk.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            if m == 0.0 {
                continue;
            }
            let e = alignment_exponent(m);
            exponents[b] = e;
            max_e = max_e.max(e);
            min_e = min_e.min(e);
            let scale = exp2(Q - e);
            for (q, &x) in iblk.iter_mut().zip(fblk.iter()) {
                *q = (x * scale).round() as i64;
            }
            transform::forward(&mut iblk, nd);
            for (w, &c) in words[b * blen..].iter_mut().zip(iblk.iter()) {
                *w = negabinary::encode(c);
            }
        }
        let a_max = coeff_bits as i32 - 1 + max_e - Q;
        let uncapped = coeff_bits + (max_e - min_e) as u32;
        let geom = PlaneGeometry {
            blen,
            coeff_bits,
            a_max,
            p_total: uncapped.min(MAX_TOTAL_PLANES),
        };
        encode_planes_scalar(&exponents, &words, &geom)
    }

    #[test]
    fn word_plane_encoder_is_byte_identical_to_scalar() {
        // every block width (4, 16, 64), mixed scales, all-zero blocks, and
        // ragged trailing blocks
        for dims in [
            vec![257usize],
            vec![64],
            vec![23, 17],
            vec![40, 25],
            vec![9, 10, 11],
        ] {
            let n: usize = dims.iter().product();
            let mut data = field(n);
            for v in data.iter_mut().skip(7).step_by(13) {
                *v *= 1e-7; // spread block exponents
            }
            for v in data.iter_mut().take(n / 5) {
                *v = 0.0; // all-zero blocks up front
            }
            let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
            let scalar = scalar_planes(&data, &dims);
            assert_eq!(stream.planes.len(), scalar.len(), "dims {dims:?}");
            for (p, (w, s)) in stream.planes.iter().zip(&scalar).enumerate() {
                assert_eq!(w, s, "dims {dims:?} plane {p}");
            }
        }
    }

    #[test]
    fn reconstruct_into_pooled_and_parallel_bit_identical() {
        // shapes above the parallel-dispatch threshold so the chunked
        // fan-out (not just the serial fallback) is what's compared
        for dims in [vec![6000usize], vec![80, 70], vec![20, 18, 16]] {
            let n: usize = dims.iter().product();
            let data = field(n);
            let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
            let mut cursor = ZfpCursor::new(stream.meta());
            for (p, plane) in stream.plane_payloads().enumerate() {
                cursor.push_plane(plane).unwrap();
                if p % 9 != 0 && p + 1 != stream.num_planes() {
                    continue;
                }
                let serial = cursor.reconstruct();
                for workers in [1usize, 2, 4] {
                    // dirty pooled buffer: reconstruct_into must fully reset it
                    let mut out = vec![f64::NAN; 7];
                    cursor.reconstruct_into(&mut out, workers);
                    assert_eq!(serial, out, "dims {dims:?} plane {p} w={workers}");
                }
            }
        }
    }

    #[test]
    fn word_cursor_matches_scalar_cursor_bit_for_bit() {
        for dims in [vec![300usize], vec![23, 17], vec![9, 10, 11]] {
            let n: usize = dims.iter().product();
            let data = field(n);
            let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
            let mut cw = ZfpCursor::new(stream.meta());
            let mut cs = ZfpCursor::new_scalar(stream.meta());
            assert!(!cs.fully_fetched() || stream.num_planes() == 0);
            for (p, plane) in stream.plane_payloads().enumerate() {
                cw.push_plane(plane).unwrap();
                cs.push_plane(plane).unwrap();
                if p % 7 == 0 || p + 1 == stream.num_planes() {
                    assert_eq!(
                        cw.digit_words(),
                        cs.digit_words(),
                        "dims {dims:?} plane {p}"
                    );
                    assert_eq!(
                        cw.reconstruct(),
                        cs.reconstruct(),
                        "dims {dims:?} plane {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn hostile_planes_fail_identically_through_both_cursors() {
        let data = field(400);
        let stream = ZfpRefactorer::new().refactor(&data, &[400]).unwrap();
        let seg = stream.plane(5).unwrap();
        let mut hostile: Vec<Vec<u8>> = Vec::new();
        for cut in [0usize, 1, seg.len() / 2, seg.len().saturating_sub(1)] {
            hostile.push(seg[..cut.min(seg.len())].to_vec());
        }
        let mut oversized = seg.to_vec();
        oversized.extend_from_slice(&[0x55; 9]);
        hostile.push(oversized);
        let mut bad_mode = seg.to_vec();
        bad_mode[0] = 0x44;
        hostile.push(bad_mode);

        for (i, bad) in hostile.iter().enumerate() {
            let advance = |mut c: ZfpCursor| -> (Result<()>, Vec<u64>) {
                for p in 0..5 {
                    c.push_plane(stream.plane(p).unwrap()).unwrap();
                }
                let r = c.push_plane(bad);
                let words = c.digit_words();
                (r, words)
            };
            let (rw, ww) = advance(ZfpCursor::new(stream.meta()));
            let (rs, ws) = advance(ZfpCursor::new_scalar(stream.meta()));
            assert_eq!(rw.is_err(), rs.is_err(), "case {i}: {rw:?} vs {rs:?}");
            if rw.is_ok() {
                assert_eq!(ww, ws, "case {i}");
            }
        }
    }

    #[test]
    fn truncated_plane_payloads_fail_identically_at_every_depth() {
        // hostile truncation of *each* plane in turn: the word path's
        // participant histogram must demand exactly the bit count the
        // scalar enumeration demands, so both cursors accept/reject the
        // same prefixes and keep identical digit state afterwards
        let mut data = field(500);
        for v in data.iter_mut().skip(3).step_by(11) {
            *v *= 1e-6; // mixed block exponents → ragged participant ramps
        }
        let stream = ZfpRefactorer::new().refactor(&data, &[500]).unwrap();
        for target in (0..stream.num_planes()).step_by(9) {
            let seg = stream.plane(target).unwrap();
            for cut in [0usize, seg.len() / 3, seg.len().saturating_sub(1)] {
                let bad = &seg[..cut.min(seg.len())];
                let drive = |mut c: ZfpCursor| {
                    for p in 0..target {
                        c.push_plane(stream.plane(p).unwrap()).unwrap();
                    }
                    let r = c.push_plane(bad);
                    let words = c.digit_words();
                    (r.is_err(), c.planes_read(), words)
                };
                let w = drive(ZfpCursor::new(stream.meta()));
                let s = drive(ZfpCursor::new_scalar(stream.meta()));
                assert_eq!(w, s, "plane {target} cut {cut}");
            }
        }
    }

    #[test]
    fn corrupt_exponent_tables_fail_identically_through_both_cursors() {
        // a corrupt exponent table shifts every block's digit interval, so
        // the expected per-plane payload sizes change; whatever the
        // word-parallel cursor then accepts or rejects must match the
        // scalar oracle exactly, plane by plane
        let data = field(600);
        let stream = ZfpRefactorer::new().refactor(&data, &[600]).unwrap();
        type Tweak = Box<dyn Fn(&mut Vec<i32>)>;
        let tweaks: Vec<Tweak> = vec![
            Box::new(|e| e[0] += 13),
            Box::new(|e| e[7] -= 9),
            Box::new(|e| e[3] = EMPTY),
            Box::new(|e| {
                let n = e.len();
                e[n - 1] += 40;
            }),
            Box::new(|e| {
                for v in e.iter_mut() {
                    *v += 2;
                }
            }),
        ];
        for (i, tweak) in tweaks.iter().enumerate() {
            let mut meta = stream.meta();
            tweak(&mut meta.exponents);
            let drive = |mut c: ZfpCursor| {
                let mut outcome = Vec::new();
                for p in 0..stream.num_planes() {
                    match c.push_plane(stream.plane(p).unwrap()) {
                        Ok(()) => outcome.push(Ok(())),
                        Err(e) => {
                            outcome.push(Err(format!("{e}")));
                            break;
                        }
                    }
                }
                let words = c.digit_words();
                (outcome, c.planes_read(), words)
            };
            let w = drive(ZfpCursor::new(meta.clone()));
            let s = drive(ZfpCursor::new_scalar(meta));
            assert_eq!(w, s, "tweak {i}");
        }
    }

    #[test]
    fn parallel_refactor_is_byte_identical_to_serial_and_scalar() {
        for dims in [vec![2048usize], vec![40, 25], vec![9, 10, 11]] {
            let n: usize = dims.iter().product();
            let mut data = field(n);
            for v in data.iter_mut().skip(5).step_by(17) {
                *v *= 1e-9;
            }
            let r = ZfpRefactorer::new();
            let serial = r.refactor(&data, &dims).unwrap().to_bytes();
            for workers in [2usize, 8] {
                let par = r
                    .refactor_with_workers(&data, &dims, workers)
                    .unwrap()
                    .to_bytes();
                assert_eq!(par, serial, "dims {dims:?} workers {workers}");
            }
            let scalar = r.refactor_scalar(&data, &dims).unwrap().to_bytes();
            assert_eq!(scalar, serial, "dims {dims:?} scalar oracle");
        }
    }

    #[test]
    fn alignment_exponent_invariants() {
        for m in [1e-12, 0.5, 1.0, 1.0000001, 3.7, 4.0, 1e12, 2.2e-308] {
            let e = alignment_exponent(m);
            assert!(m <= exp2(e), "m={m} e={e}");
            assert!(
                e == MIN_EXPONENT || m > exp2(e - 1),
                "m={m}: e={e} not minimal"
            );
        }
    }

    #[test]
    fn refine_meets_bounds_and_real_error_below_guarantee() {
        let data = field(3000);
        let stream = ZfpRefactorer::new().refactor(&data, &[3000]).unwrap();
        let mut reader = stream.reader();
        for eb in [1e-1, 1e-3, 1e-6, 1e-10] {
            reader.refine_to(eb).unwrap();
            assert!(reader.guaranteed_bound() <= eb, "eb={eb}");
            let real = max_abs_diff(&data, &reader.reconstruct());
            assert!(
                real <= reader.guaranteed_bound(),
                "eb={eb}: real {real} > guarantee {}",
                reader.guaranteed_bound()
            );
        }
    }

    #[test]
    fn full_fetch_reaches_rounding_floor() {
        let data = field(500);
        let stream = ZfpRefactorer::new().refactor(&data, &[500]).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(0.0).unwrap();
        assert!(reader.fully_fetched());
        let real = max_abs_diff(&data, &reader.reconstruct());
        assert!(real <= reader.guaranteed_bound());
        assert!(real < 1e-14, "residual {real}");
    }

    #[test]
    fn multidimensional_roundtrip() {
        for dims in [vec![40, 25], vec![9, 10, 11]] {
            let n: usize = dims.iter().product();
            let data = field(n);
            let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
            let mut reader = stream.reader();
            reader.refine_to(1e-6).unwrap();
            let real = max_abs_diff(&data, &reader.reconstruct());
            assert!(real <= reader.guaranteed_bound(), "dims {dims:?}");
            assert!(reader.guaranteed_bound() <= 1e-6, "dims {dims:?}");
        }
    }

    #[test]
    fn byte_accounting_cumulative() {
        let data = field(4000);
        let stream = ZfpRefactorer::new().refactor(&data, &[4000]).unwrap();
        let mut reader = stream.reader();
        assert_eq!(reader.total_fetched(), stream.metadata_bytes());
        let b1 = reader.refine_to(1e-2).unwrap();
        let t1 = reader.total_fetched();
        let b2 = reader.refine_to(1e-8).unwrap();
        assert!(b1 > 0 && b2 > 0);
        assert_eq!(reader.total_fetched(), t1 + b2);
        assert_eq!(reader.refine_to(1e-5).unwrap(), 0, "already satisfied");
    }

    #[test]
    fn bitrate_grows_smoothly_not_staircase() {
        let data = field(8192);
        let stream = ZfpRefactorer::new().refactor(&data, &[8192]).unwrap();
        let mut sizes = Vec::new();
        for i in 1..=20 {
            let eb = 0.1 * (2.0f64).powi(-i);
            let mut reader = stream.reader();
            reader.refine_to(eb).unwrap();
            sizes.push(reader.total_fetched());
        }
        let distinct: std::collections::BTreeSet<_> = sizes.iter().collect();
        assert!(
            distinct.len() >= 12,
            "only {} distinct sizes",
            distinct.len()
        );
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn all_zero_field_is_free() {
        let stream = ZfpRefactorer::new().refactor(&[0.0; 256], &[256]).unwrap();
        assert_eq!(stream.num_planes(), 0);
        let mut reader = stream.reader();
        assert_eq!(reader.guaranteed_bound(), 0.0);
        reader.refine_to(0.0).unwrap();
        assert!(reader.reconstruct().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mixed_scale_blocks_join_planes_late() {
        // one large block, the rest tiny: early planes should be almost
        // free because only the large block participates
        let mut data = vec![1e-6; 4096];
        for v in data.iter_mut().take(4) {
            *v = 1000.0;
        }
        let stream = ZfpRefactorer::new().refactor(&data, &[4096]).unwrap();
        let sizes = stream.segment_sizes();
        let early: usize = sizes[..10].iter().sum();
        let late: usize = sizes[sizes.len() - 10..].iter().sum();
        assert!(early * 4 < late, "early {early} B vs late {late} B");
    }

    #[test]
    fn serialization_roundtrip() {
        let data = field(777);
        let stream = ZfpRefactorer::new().refactor(&data, &[777]).unwrap();
        let bytes = stream.to_bytes();
        let stream2 = ZfpStream::from_bytes(&bytes).unwrap();
        let mut a = stream.reader();
        let mut b = stream2.reader();
        a.refine_to(1e-7).unwrap();
        b.refine_to(1e-7).unwrap();
        assert_eq!(a.reconstruct(), b.reconstruct());
        assert_eq!(a.total_fetched(), b.total_fetched());
    }

    #[test]
    fn corrupt_streams_rejected_not_panicking() {
        let data = field(64);
        let stream = ZfpRefactorer::new().refactor(&data, &[64]).unwrap();
        let bytes = stream.to_bytes();
        assert!(ZfpStream::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ZfpStream::from_bytes(&bad).is_err());
        for cut in [5usize, 20, bytes.len() / 2] {
            let _ = ZfpStream::from_bytes(&bytes[..cut]); // must not panic
        }
    }

    #[test]
    fn non_finite_data_rejected() {
        assert!(ZfpRefactorer::new()
            .refactor(&[1.0, f64::NAN], &[2])
            .is_err());
        assert!(ZfpRefactorer::new()
            .refactor(&[f64::INFINITY; 4], &[4])
            .is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(ZfpRefactorer::new().refactor(&[1.0; 5], &[6]).is_err());
        assert!(ZfpRefactorer::new()
            .refactor(&[1.0; 16], &[2, 2, 2, 2])
            .is_err());
    }

    #[test]
    fn bound_decreases_monotonically() {
        let data = field(1000);
        let stream = ZfpRefactorer::new().refactor(&data, &[1000]).unwrap();
        let mut prev = f64::INFINITY;
        for k in 0..=stream.num_planes() as u32 {
            let b = stream.bound_after(k);
            assert!(b <= prev, "k={k}: {b} > {prev}");
            prev = b;
        }
    }

    #[test]
    fn region_reconstruction_matches_full_window() {
        for dims in [vec![100usize], vec![23, 17], vec![9, 10, 11]] {
            let n: usize = dims.iter().product();
            let data = field(n);
            let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
            let mut reader = stream.reader();
            reader.refine_to(1e-8).unwrap();
            let full = reader.reconstruct();
            // a window strictly inside the array, not block-aligned
            let lo: Vec<usize> = dims.iter().map(|&d| (d / 3).min(d - 1)).collect();
            let hi: Vec<usize> = dims.iter().map(|&d| (2 * d / 3).max(d / 3 + 1)).collect();
            let region = reader.reconstruct_region(&lo, &hi).unwrap();
            // compare against the window of the full reconstruction
            let nd = dims.len();
            let mut strides = vec![1usize; nd];
            for a in (0..nd.saturating_sub(1)).rev() {
                strides[a] = strides[a + 1] * dims[a + 1];
            }
            let window: Vec<usize> = (0..nd).map(|a| hi[a] - lo[a]).collect();
            let wn: usize = window.iter().product();
            assert_eq!(region.len(), wn, "dims {dims:?}");
            let mut coord = vec![0usize; nd];
            for r in &region {
                let idx: usize = (0..nd).map(|a| (lo[a] + coord[a]) * strides[a]).sum();
                assert_eq!(*r, full[idx], "dims {dims:?} coord {coord:?}");
                let mut a = nd;
                loop {
                    if a == 0 {
                        break;
                    }
                    a -= 1;
                    coord[a] += 1;
                    if coord[a] < window[a] {
                        break;
                    }
                    coord[a] = 0;
                }
            }
        }
    }

    #[test]
    fn region_error_honours_the_global_bound() {
        let dims = vec![30usize, 40];
        let data = field(1200);
        let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(1e-5).unwrap();
        let region = reader.reconstruct_region(&[5, 10], &[25, 30]).unwrap();
        let mut worst = 0.0f64;
        let mut k = 0;
        for i in 5..25 {
            for j in 10..30 {
                worst = worst.max((region[k] - data[i * 40 + j]).abs());
                k += 1;
            }
        }
        assert!(worst <= reader.guaranteed_bound());
    }

    #[test]
    fn region_edge_cases() {
        let data = field(64);
        let stream = ZfpRefactorer::new().refactor(&data, &[64]).unwrap();
        let reader = stream.reader();
        // empty window
        assert_eq!(reader.reconstruct_region(&[5], &[5]).unwrap().len(), 0);
        // full window at zero planes = all zeros
        let w = reader.reconstruct_region(&[0], &[64]).unwrap();
        assert_eq!(w.len(), 64);
        // bad requests
        assert!(reader.reconstruct_region(&[5], &[3]).is_err());
        assert!(reader.reconstruct_region(&[0], &[65]).is_err());
        assert!(reader.reconstruct_region(&[0, 0], &[1, 1]).is_err());
    }

    #[test]
    fn real_error_below_guarantee_at_every_plane_depth() {
        let data = field(600);
        let stream = ZfpRefactorer::new().refactor(&data, &[600]).unwrap();
        let mut reader = stream.reader();
        loop {
            let real = max_abs_diff(&data, &reader.reconstruct());
            assert!(
                real <= reader.guaranteed_bound(),
                "k={}: real {real} > bound {}",
                reader.planes_read(),
                reader.guaranteed_bound()
            );
            if reader.fully_fetched() {
                break;
            }
            reader.fetch_planes(1).unwrap();
        }
    }
}
