//! Negabinary (base −2) coefficient mapping.
//!
//! Bitplane coding wants unsigned digits whose truncation error is bounded
//! by the weight of the first dropped digit. Two's complement fails this
//! (dropping low bits of a negative number can flip its magnitude wildly
//! relative to the retained sign bit convention), and sign-magnitude needs
//! the separate sign-plane machinery the MGARD coder carries. Negabinary —
//! ZFP's choice — encodes sign into the digits themselves: truncating the
//! low `j` digits perturbs the value by strictly less than `2^j`, no sign
//! bookkeeping required.
//!
//! The maps below are the standard O(1) bit tricks: with
//! `MASK = 0xAAAA…AAAA` (all odd-position bits),
//! `encode(x) = (x + MASK) ^ MASK` and `decode(u) = (u ^ MASK) − MASK`,
//! exact inverses over the full 64-bit range (wrapping arithmetic).

/// Alternating-bit constant: bits at odd positions set.
const MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Maps a signed coefficient to its negabinary digit word.
#[inline]
pub fn encode(x: i64) -> u64 {
    (x as u64).wrapping_add(MASK) ^ MASK
}

/// Inverse of [`encode`].
#[inline]
pub fn decode(u: u64) -> i64 {
    (u ^ MASK).wrapping_sub(MASK) as i64
}

/// Number of negabinary digits needed to represent every `x` with
/// `|x| ≤ 2^m`: one digit of headroom over binary covers the widest case.
///
/// Used to size the per-block plane count; a generous bound is free because
/// all-zero high planes collapse to a few RLE bytes.
#[inline]
pub fn digits_for_magnitude_bits(m: u32) -> u32 {
    m + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_values() {
        for x in -1000i64..=1000 {
            assert_eq!(decode(encode(x)), x);
        }
    }

    #[test]
    fn roundtrip_extremes() {
        for x in [i64::MIN, i64::MAX, 0, 1, -1, 1 << 55, -(1 << 55)] {
            assert_eq!(decode(encode(x)), x);
        }
    }

    #[test]
    fn known_digit_patterns() {
        // −1 in negabinary is "11" (−2 + 1); −2 is "10"; 2 is "110".
        assert_eq!(encode(0), 0);
        assert_eq!(encode(1), 1);
        assert_eq!(encode(-1), 0b11);
        assert_eq!(encode(-2), 0b10);
        assert_eq!(encode(2), 0b110);
        assert_eq!(encode(3), 0b111);
    }

    #[test]
    fn digit_count_bound_holds() {
        // every |x| ≤ 2^m must fit in digits_for_magnitude_bits(m) digits
        for m in 0..=55u32 {
            let digits = digits_for_magnitude_bits(m);
            let lim = 1i64 << m;
            for x in [lim, -lim, lim - 1, -(lim - 1), lim / 2 + 1, -(lim / 2) - 1] {
                let u = encode(x);
                assert!(
                    u < (1u128 << digits) as u64 || digits >= 64,
                    "m={m} x={x}: u={u:#x} needs more than {digits} digits"
                );
            }
        }
    }

    #[test]
    fn truncation_error_below_dropped_weight() {
        // dropping the low j digits moves the value by < 2^j
        let xs = [12345i64, -98765, 1 << 40, -(1 << 40) + 777, -3, 2];
        for &x in &xs {
            let u = encode(x);
            for j in 0..60u32 {
                let trunc = u & !((1u64 << j) - 1);
                let err = (decode(trunc) - x).abs();
                assert!(err < (1i64 << j), "x={x} j={j}: err {err}");
            }
        }
    }

    #[test]
    fn truncation_error_property_dense() {
        // exhaustive over a window plus pseudo-random 64-bit-ish values
        let mut s = 0x1357_9bdfu64;
        let mut vals: Vec<i64> = (-300..=300).collect();
        for _ in 0..500 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            vals.push((s as i64) >> 8);
        }
        for &x in &vals {
            let u = encode(x);
            for j in [1u32, 4, 17, 33, 52] {
                let err = (decode(u & !((1u64 << j) - 1)) - x).unsigned_abs();
                assert!(err < (1u64 << j), "x={x} j={j}");
            }
        }
    }
}
