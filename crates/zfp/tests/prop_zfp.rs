//! Property-based tests for the ZFP stand-in: the guaranteed bound must
//! dominate the real error for arbitrary data, shapes and fetch depths, and
//! every structural codec must roundtrip or fail cleanly.

use pqr_util::stats::max_abs_diff;
use pqr_zfp::{transform, ZfpRefactorer, ZfpStream};
use proptest::prelude::*;

/// Arbitrary finite f64 fields with wildly mixed scales.
fn field_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            // plain values
            -1e3f64..1e3,
            // tiny magnitudes (exercise per-block exponent spread)
            -1e-9f64..1e-9,
            // large magnitudes
            -1e12f64..1e12,
            // exact zeros (empty blocks)
            Just(0.0),
        ],
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn guarantee_dominates_real_error_1d(data in field_strategy(600)) {
        let dims = vec![data.len()];
        let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
        let mut reader = stream.reader();
        // check at a few depths including exhaustion
        for _ in 0..6 {
            let real = max_abs_diff(&data, &reader.reconstruct());
            prop_assert!(
                real <= reader.guaranteed_bound(),
                "real {real} > bound {}", reader.guaranteed_bound()
            );
            reader.fetch_planes(11).unwrap();
        }
        reader.refine_to(0.0).unwrap();
        let real = max_abs_diff(&data, &reader.reconstruct());
        prop_assert!(real <= reader.guaranteed_bound());
    }

    #[test]
    fn guarantee_dominates_real_error_2d(
        rows in 1usize..20,
        cols in 1usize..20,
        seed in any::<u64>(),
    ) {
        let n = rows * cols;
        let mut s = seed | 1;
        let data: Vec<f64> = (0..n).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s as f64 / u64::MAX as f64) - 0.5) * 2e4
        }).collect();
        let stream = ZfpRefactorer::new().refactor(&data, &[rows, cols]).unwrap();
        let mut reader = stream.reader();
        for eb in [1e2, 1e-2, 1e-8] {
            reader.refine_to(eb).unwrap();
            let real = max_abs_diff(&data, &reader.reconstruct());
            prop_assert!(real <= reader.guaranteed_bound());
            prop_assert!(reader.guaranteed_bound() <= eb || reader.fully_fetched());
        }
    }

    #[test]
    fn requested_bound_always_satisfied_or_exhausted(
        data in field_strategy(400),
        log_eb in -14.0f64..2.0,
    ) {
        let dims = vec![data.len()];
        let eb = 10f64.powf(log_eb);
        let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(eb).unwrap();
        prop_assert!(reader.guaranteed_bound() <= eb || reader.fully_fetched());
        let real = max_abs_diff(&data, &reader.reconstruct());
        prop_assert!(real <= reader.guaranteed_bound());
    }

    #[test]
    fn serialization_roundtrips(data in field_strategy(300)) {
        let dims = vec![data.len()];
        let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
        let stream2 = ZfpStream::from_bytes(&stream.to_bytes()).unwrap();
        let mut a = stream.reader();
        let mut b = stream2.reader();
        a.refine_to(1e-6).unwrap();
        b.refine_to(1e-6).unwrap();
        prop_assert_eq!(a.reconstruct(), b.reconstruct());
    }

    #[test]
    fn hostile_streams_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = ZfpStream::from_bytes(&junk);
        // junk with a valid magic prefix digs deeper into the parser
        let mut prefixed = b"PQRZ".to_vec();
        prefixed.extend_from_slice(&junk);
        let _ = ZfpStream::from_bytes(&prefixed);
    }

    #[test]
    fn transform_roundtrip_is_exact(
        vals in proptest::collection::vec((-1i64 << 52)..(1i64 << 52), 64),
        nd in 1usize..=3,
    ) {
        let len = 4usize.pow(nd as u32);
        let orig: Vec<i64> = vals[..len].to_vec();
        let mut blk = orig.clone();
        transform::forward(&mut blk, nd);
        transform::inverse(&mut blk, nd);
        prop_assert_eq!(blk, orig);
    }

    #[test]
    fn region_matches_full_reconstruction_window(
        rows in 1usize..24,
        cols in 1usize..24,
        seed in any::<u64>(),
        frac_lo in 0.0f64..0.8,
        frac_hi in 0.2f64..1.0,
        planes in 0usize..40,
    ) {
        let n = rows * cols;
        let mut s = seed | 1;
        let data: Vec<f64> = (0..n).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s as f64 / u64::MAX as f64) - 0.5) * 100.0
        }).collect();
        let stream = ZfpRefactorer::new().refactor(&data, &[rows, cols]).unwrap();
        let mut reader = stream.reader();
        reader.fetch_planes(planes).unwrap();
        let full = reader.reconstruct();

        let lo = [
            ((rows as f64) * frac_lo.min(frac_hi)) as usize,
            ((cols as f64) * frac_lo.min(frac_hi)) as usize,
        ];
        let hi = [
            (((rows as f64) * frac_lo.max(frac_hi)) as usize).max(lo[0]).min(rows),
            (((cols as f64) * frac_lo.max(frac_hi)) as usize).max(lo[1]).min(cols),
        ];
        let region = reader.reconstruct_region(&lo, &hi).unwrap();
        let (wr, wc) = (hi[0] - lo[0], hi[1] - lo[1]);
        prop_assert_eq!(region.len(), wr * wc);
        for r in 0..wr {
            for c in 0..wc {
                prop_assert_eq!(
                    region[r * wc + c],
                    full[(lo[0] + r) * cols + (lo[1] + c)],
                    "window ({}, {})",
                    r,
                    c
                );
            }
        }
    }

    #[test]
    fn fetched_bytes_monotone_in_precision(data in field_strategy(500)) {
        let dims = vec![data.len()];
        let stream = ZfpRefactorer::new().refactor(&data, &dims).unwrap();
        let mut prev = 0usize;
        for i in 1..=12 {
            let eb = 10f64.powi(-i);
            let mut reader = stream.reader();
            reader.refine_to(eb).unwrap();
            prop_assert!(reader.total_fetched() >= prev);
            prev = reader.total_fetched();
        }
    }
}
