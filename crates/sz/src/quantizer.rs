//! Linear-scaling quantization with an escape code (SZ-style).
//!
//! A residual `r = value − prediction` is mapped to the integer code
//! `round(r / 2eb)`; reconstruction is `prediction + 2eb·code`, which is
//! within `eb` of the original **by construction** — the quantizer verifies
//! this (guarding against float pathologies near huge magnitudes) and falls
//! back to escape-coding the exact value otherwise. Symbol 0 is the escape;
//! code `c` is stored as symbol `c + radius`.

/// Escape symbol: the point is stored losslessly out-of-band.
pub const ESCAPE: u32 = 0;

/// SZ-style residual quantizer.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    /// Absolute error bound (> 0).
    eb: f64,
    /// Code radius; valid codes are `-(radius-1) ..= radius-1`.
    radius: i64,
}

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized {
    /// Predictable: `symbol` to entropy-code, `recon` to feed back into the
    /// predictor.
    Code { symbol: u32, recon: f64 },
    /// Unpredictable: store the exact value out-of-band.
    Escape,
}

impl Quantizer {
    /// Creates a quantizer for error bound `eb > 0` with the given radius.
    pub fn new(eb: f64, radius: u32) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        assert!(radius >= 2, "radius must be at least 2");
        Self {
            eb,
            radius: i64::from(radius),
        }
    }

    /// Alphabet size for the entropy coder (`2·radius`).
    pub fn alphabet(&self) -> u32 {
        (self.radius * 2) as u32
    }

    /// Quantizes `value` against `prediction`.
    #[inline]
    pub fn quantize(&self, value: f64, prediction: f64) -> Quantized {
        let diff = value - prediction;
        if !diff.is_finite() {
            return Quantized::Escape;
        }
        let code = (diff / (2.0 * self.eb)).round();
        if code.abs() >= (self.radius - 1) as f64 {
            return Quantized::Escape;
        }
        let code = code as i64;
        let recon = prediction + 2.0 * self.eb * code as f64;
        // Verify the bound actually holds in floating point (it can fail for
        // values around 1e15·eb where 2eb·code rounds badly).
        if (recon - value).abs() > self.eb {
            return Quantized::Escape;
        }
        Quantized::Code {
            symbol: (code + self.radius) as u32,
            recon,
        }
    }

    /// Reconstructs from an entropy-decoded symbol (must not be [`ESCAPE`]).
    #[inline]
    pub fn reconstruct(&self, symbol: u32, prediction: f64) -> f64 {
        debug_assert_ne!(symbol, ESCAPE);
        let code = i64::from(symbol) - self.radius;
        prediction + 2.0 * self.eb * code as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_reconstruct_respects_bound() {
        let q = Quantizer::new(1e-3, 32768);
        for &(v, p) in &[
            (1.0, 0.9),
            (-5.0, -4.9987),
            (0.0, 0.0),
            (2.65625, 3.0),
            (1e-9, -1e-9),
        ] {
            match q.quantize(v, p) {
                Quantized::Code { symbol, recon } => {
                    assert!((recon - v).abs() <= 1e-3, "v={v} recon={recon}");
                    assert_eq!(q.reconstruct(symbol, p), recon);
                }
                Quantized::Escape => panic!("should be predictable: v={v} p={p}"),
            }
        }
    }

    #[test]
    fn large_residual_escapes() {
        let q = Quantizer::new(1e-6, 256);
        assert_eq!(q.quantize(1.0, 0.0), Quantized::Escape);
    }

    #[test]
    fn nan_and_inf_escape() {
        let q = Quantizer::new(1e-3, 32768);
        assert_eq!(q.quantize(f64::NAN, 0.0), Quantized::Escape);
        assert_eq!(q.quantize(f64::INFINITY, 0.0), Quantized::Escape);
        assert_eq!(q.quantize(0.0, f64::NAN), Quantized::Escape);
    }

    #[test]
    fn symbol_zero_is_reserved_for_escape() {
        let q = Quantizer::new(0.5, 4);
        // most negative admissible code is -(radius-1)+1? codes with
        // |code| >= radius-1 escape, so min code = -(radius-2) = -2,
        // symbol = -2 + 4 = 2 > 0. Symbol 0 can never be produced.
        for v in [-3.0f64, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0] {
            if let Quantized::Code { symbol, .. } = q.quantize(v, 0.0) {
                assert_ne!(symbol, ESCAPE);
            }
        }
    }

    #[test]
    fn exact_prediction_gives_centre_symbol() {
        let q = Quantizer::new(1e-2, 32768);
        match q.quantize(7.5, 7.5) {
            Quantized::Code { symbol, recon } => {
                assert_eq!(symbol, 32768); // code 0
                assert_eq!(recon, 7.5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn huge_magnitude_floating_point_guard() {
        // At 1e18 with eb=1e-3, 2eb·code cannot represent the residual:
        // quantizer must detect the violated bound and escape.
        let q = Quantizer::new(1e-3, 32768);
        let v = 1e18 + 0.5;
        match q.quantize(v, 1e18) {
            Quantized::Code { recon, .. } => assert!((recon - v).abs() <= 1e-3),
            Quantized::Escape => {} // acceptable — bound preserved by escape
        }
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_eb_rejected() {
        Quantizer::new(0.0, 16);
    }

    #[test]
    fn alphabet_is_twice_radius() {
        assert_eq!(Quantizer::new(1.0, 100).alphabet(), 200);
    }
}
