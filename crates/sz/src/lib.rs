//! # pqr-sz — SZ3-like error-bounded lossy compressor
//!
//! The paper's PSZ3 / PSZ3-delta progressive representations (§V-B) are
//! built on SZ3, the interpolation-based error-bounded compressor. This
//! crate is the from-scratch Rust stand-in: it guarantees the same contract
//! (`max |xᵢ − x̂ᵢ| ≤ eb` for every point, strictly) through the same
//! pipeline shape:
//!
//! 1. **Prediction** — level-by-level cubic/linear interpolation on the
//!    dyadic grid, dimension by dimension (the SZ3 flagship predictor), or a
//!    first-order Lorenzo predictor (the SZ1.4/SZ2 classic) — see
//!    [`predictor`].
//! 2. **Linear-scaling quantization** of the prediction residual with an
//!    escape code for unpredictable points ([`quantizer`]).
//! 3. **Entropy coding** — canonical Huffman over quantization codes
//!    (`pqr_util::huffman`) followed by a zero-run RLE byte stage standing in
//!    for zstd (`pqr_util::rle`).
//!
//! What this reproduction preserves (all that PSZ3 needs): the strict L∞
//! bound, decompression determinism (prediction runs on *reconstructed*
//! neighbours on both sides), and the rate-distortion monotonicity that
//! shapes the paper's figures. Absolute ratios differ from the C++ SZ3.
//!
//! ## Example
//!
//! ```
//! use pqr_sz::{SzCompressor, SzConfig};
//!
//! let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
//! let comp = SzCompressor::new(SzConfig::default());
//! let blob = comp.compress(&data, &[1000], 1e-4).unwrap();
//! let (recon, dims) = comp.decompress(&blob).unwrap();
//! assert_eq!(dims, vec![1000]);
//! let max_err = data.iter().zip(&recon).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
//! assert!(max_err <= 1e-4);
//! assert!(blob.len() < 8 * data.len() / 2); // smooth data compresses
//! ```

pub mod compressor;
pub mod config;
pub mod predictor;
pub mod pwrel;
pub mod quantizer;

pub use compressor::SzCompressor;
pub use config::{Predictor, SzConfig};
