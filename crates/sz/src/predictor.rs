//! Decorrelating predictors with a shared, deterministic traversal.
//!
//! Compression and decompression must visit points in the *same* order and
//! predict from the *same* (reconstructed) neighbour values — otherwise the
//! error bound breaks. Both sides therefore drive the single [`traverse`]
//! function and differ only in the visitor closure: the compressor quantizes
//! `original − prediction`, the decompressor applies the decoded code.
//!
//! Two predictor families are implemented:
//!
//! * **Level-by-level interpolation** (SZ3's flagship): points on the dyadic
//!   grid are refined from stride `2s` to stride `s`, dimension by dimension;
//!   each new point is predicted by cubic interpolation along the active axis
//!   where four neighbours exist, linear where two exist, nearest otherwise.
//! * **First-order Lorenzo** (SZ1.4/SZ2): each point is predicted from the
//!   inclusion–exclusion stencil of its already-visited neighbours in
//!   row-major order.

use crate::config::Predictor;

/// Drives `visit(flat_index, prediction) -> reconstructed_value` over every
/// point of a `dims`-shaped row-major array exactly once, maintaining the
/// reconstruction in `recon` (which must be zero-filled, `len == ∏dims`).
pub fn traverse<F>(predictor: Predictor, dims: &[usize], recon: &mut [f64], visit: F)
where
    F: FnMut(usize, f64) -> f64,
{
    let n: usize = dims.iter().product();
    assert_eq!(recon.len(), n, "recon buffer size mismatch");
    if n == 0 {
        return;
    }
    match predictor {
        Predictor::Lorenzo => traverse_lorenzo(dims, recon, visit),
        Predictor::InterpCubic => traverse_interp(dims, recon, visit, true),
        Predictor::InterpLinear => traverse_interp(dims, recon, visit, false),
    }
}

/// Row-major strides of a shape.
fn strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * dims[i + 1];
    }
    s
}

// ---------------------------------------------------------------------------
// Lorenzo
// ---------------------------------------------------------------------------

fn traverse_lorenzo<F>(dims: &[usize], recon: &mut [f64], mut visit: F)
where
    F: FnMut(usize, f64) -> f64,
{
    assert!(
        (1..=3).contains(&dims.len()),
        "Lorenzo predictor supports 1-3 dimensions, got {}",
        dims.len()
    );
    match dims.len() {
        1 => {
            for i in 0..dims[0] {
                let pred = if i > 0 { recon[i - 1] } else { 0.0 };
                recon[i] = visit(i, pred);
            }
        }
        2 => {
            let (n0, n1) = (dims[0], dims[1]);
            for i in 0..n0 {
                for j in 0..n1 {
                    let idx = i * n1 + j;
                    let a = if i > 0 { recon[idx - n1] } else { 0.0 };
                    let b = if j > 0 { recon[idx - 1] } else { 0.0 };
                    let c = if i > 0 && j > 0 {
                        recon[idx - n1 - 1]
                    } else {
                        0.0
                    };
                    recon[idx] = visit(idx, a + b - c);
                }
            }
        }
        3 => {
            let (n0, n1, n2) = (dims[0], dims[1], dims[2]);
            let s0 = n1 * n2;
            for i in 0..n0 {
                for j in 0..n1 {
                    for k in 0..n2 {
                        let idx = i * s0 + j * n2 + k;
                        let gi = i > 0;
                        let gj = j > 0;
                        let gk = k > 0;
                        let f = |c: bool, off: usize| if c { recon[idx - off] } else { 0.0 };
                        let pred = f(gi, s0) + f(gj, n2) + f(gk, 1)
                            - f(gi && gj, s0 + n2)
                            - f(gi && gk, s0 + 1)
                            - f(gj && gk, n2 + 1)
                            + f(gi && gj && gk, s0 + n2 + 1);
                        recon[idx] = visit(idx, pred);
                    }
                }
            }
        }
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------------
// Level-by-level interpolation (SZ3 style)
// ---------------------------------------------------------------------------

/// Cubic interpolation weights for neighbours at −3s, −s, +s, +3s.
const CUBIC_W: [f64; 4] = [-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0];

fn traverse_interp<F>(dims: &[usize], recon: &mut [f64], mut visit: F, cubic: bool)
where
    F: FnMut(usize, f64) -> f64,
{
    let nd = dims.len();
    let st = strides(dims);
    // Anchor: origin point, predicted as 0 (the quantizer escape-codes it if
    // the value is large).
    recon[0] = visit(0, 0.0);
    let max_dim = *dims.iter().max().unwrap();
    if max_dim <= 1 {
        return;
    }
    // Top stride: smallest power of two p with p >= max_dim, start at p/2 so
    // that the only coordinate multiple of 2·s_top in range is 0 (the anchor
    // is then the entire known coarse grid).
    let mut s = max_dim.next_power_of_two() / 2;

    // Reusable coordinate odometer.
    let mut coord = vec![0usize; nd];
    while s >= 1 {
        for axis in 0..nd {
            if s >= dims[axis] {
                continue; // no coordinate ≥ s exists along this axis
            }
            // Enumerate: coord[axis] ∈ {s, 3s, ...}; coord[a<axis] multiples
            // of s; coord[a>axis] multiples of 2s.
            coord.iter_mut().for_each(|c| *c = 0);
            coord[axis] = s;
            'outer: loop {
                // flat index
                let idx: usize = coord.iter().zip(&st).map(|(c, k)| c * k).sum();
                let pred = interp_predict(recon, dims[axis], st[axis], idx, coord[axis], s, cubic);
                recon[idx] = visit(idx, pred);

                // advance odometer (last axis fastest)
                let mut a = nd;
                loop {
                    if a == 0 {
                        break 'outer;
                    }
                    a -= 1;
                    let step = if a == axis {
                        2 * s
                    } else if a < axis {
                        s
                    } else {
                        2 * s
                    };
                    coord[a] += step;
                    if coord[a] < dims[a] {
                        break;
                    }
                    coord[a] = if a == axis { s } else { 0 };
                }
            }
        }
        if s == 1 {
            break;
        }
        s /= 2;
    }
}

/// Predicts the value at 1-D position `c` (flat `idx`) along an axis with
/// element stride `stride` and extent `dim`, from known neighbours at
/// `c ± s`, `c ± 3s`.
#[inline]
fn interp_predict(
    recon: &[f64],
    dim: usize,
    stride: usize,
    idx: usize,
    c: usize,
    s: usize,
    cubic: bool,
) -> f64 {
    let left = recon[idx - s * stride]; // c ≥ s always
    let has_right = c + s < dim;
    if !has_right {
        return left;
    }
    let right = recon[idx + s * stride];
    if cubic && c >= 3 * s && c + 3 * s < dim {
        let ll = recon[idx - 3 * s * stride];
        let rr = recon[idx + 3 * s * stride];
        return CUBIC_W[0] * ll + CUBIC_W[1] * left + CUBIC_W[2] * right + CUBIC_W[3] * rr;
    }
    0.5 * (left + right)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Traversal must visit every index exactly once, for any shape.
    fn assert_visits_all(predictor: Predictor, dims: &[usize]) {
        let n: usize = dims.iter().product();
        let mut seen = vec![0u32; n];
        let mut recon = vec![0.0; n];
        traverse(predictor, dims, &mut recon, |idx, _| {
            seen[idx] += 1;
            idx as f64
        });
        for (i, &c) in seen.iter().enumerate() {
            assert_eq!(c, 1, "{predictor:?} {dims:?}: index {i} visited {c}×");
        }
    }

    #[test]
    fn lorenzo_visits_every_point_once() {
        assert_visits_all(Predictor::Lorenzo, &[1]);
        assert_visits_all(Predictor::Lorenzo, &[17]);
        assert_visits_all(Predictor::Lorenzo, &[5, 9]);
        assert_visits_all(Predictor::Lorenzo, &[4, 3, 7]);
    }

    #[test]
    fn interp_visits_every_point_once_awkward_shapes() {
        for dims in [
            vec![1],
            vec![2],
            vec![3],
            vec![17],
            vec![64],
            vec![65],
            vec![5, 9],
            vec![16, 16],
            vec![7, 1],
            vec![1, 7],
            vec![4, 3, 7],
            vec![8, 8, 8],
            vec![1, 1, 1],
            vec![2, 5, 3],
        ] {
            assert_visits_all(Predictor::InterpCubic, &dims);
            assert_visits_all(Predictor::InterpLinear, &dims);
        }
    }

    #[test]
    fn interp_prediction_order_is_causal() {
        // Every prediction must only read already-visited points: run with a
        // sentinel and check predictions never see the sentinel.
        let dims = [33usize];
        let n = 33;
        let mut recon = vec![f64::NAN; n]; // NaN = not yet visited
        traverse(Predictor::InterpCubic, &dims, &mut recon, |idx, pred| {
            assert!(
                !pred.is_nan(),
                "prediction for {idx} read an unvisited point"
            );
            idx as f64
        });
    }

    #[test]
    fn lorenzo_prediction_order_is_causal() {
        let dims = [6usize, 7];
        let mut recon = vec![f64::NAN; 42];
        traverse(Predictor::Lorenzo, &dims, &mut recon, |idx, pred| {
            assert!(!pred.is_nan(), "index {idx}");
            idx as f64
        });
    }

    #[test]
    fn interp_exactly_reproduces_linear_ramp_with_linear_interp() {
        // A linear function is predicted exactly by linear interpolation
        // except at the anchor and boundary-copy points.
        let dims = [65usize];
        let data: Vec<f64> = (0..65).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut recon = vec![0.0; 65];
        let mut exact = 0usize;
        traverse(Predictor::InterpLinear, &dims, &mut recon, |idx, pred| {
            if (pred - data[idx]).abs() < 1e-12 {
                exact += 1;
            }
            data[idx] // perfect reconstruction feed-back
        });
        // all interior midpoints are exact; only anchor (pred 0) and
        // right-edge copies may differ
        assert!(exact >= 60, "only {exact} exact predictions");
    }

    #[test]
    fn cubic_stencil_reproduces_cubic_polynomial_exactly() {
        // The 4-point weights (−1/16, 9/16, 9/16, −1/16) interpolate degree-3
        // polynomials exactly. Stride-1 predictions (odd indices) with a full
        // stencil (3 ≤ c ≤ dim−4) must therefore be exact when the feedback
        // values are exact.
        let dims = [129usize];
        let f = |x: f64| 0.5 * x * x * x - x * x + 3.0;
        let data: Vec<f64> = (0..129).map(|i| f(i as f64 / 64.0)).collect();
        let mut recon = vec![0.0; 129];
        let mut checked = 0usize;
        traverse(Predictor::InterpCubic, &dims, &mut recon, |idx, pred| {
            if idx % 2 == 1 && (3..=125).contains(&idx) {
                assert!(
                    (pred - data[idx]).abs() < 1e-12,
                    "idx {idx}: pred {pred} vs {}",
                    data[idx]
                );
                checked += 1;
            }
            data[idx]
        });
        assert!(checked >= 60, "only {checked} cubic predictions checked");
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[4, 3, 2]), vec![6, 2, 1]);
        assert_eq!(strides(&[10]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "1-3 dimensions")]
    fn lorenzo_rejects_4d() {
        let mut r = vec![0.0; 16];
        traverse(Predictor::Lorenzo, &[2, 2, 2, 2], &mut r, |_, _| 0.0);
    }

    #[test]
    fn interp_handles_4d() {
        assert_visits_all(Predictor::InterpCubic, &[2, 3, 2, 4]);
    }

    #[test]
    fn empty_array_is_noop() {
        let mut r: Vec<f64> = vec![];
        traverse(Predictor::InterpCubic, &[0], &mut r, |_, _| unreachable!());
        traverse(Predictor::Lorenzo, &[0], &mut r, |_, _| unreachable!());
    }
}
