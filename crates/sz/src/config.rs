//! Compressor configuration.

/// Which decorrelating predictor to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Predictor {
    /// SZ3-style level-by-level interpolation with cubic splines where four
    /// neighbours exist, linear otherwise. Best for smooth fields — the
    /// paper's default substrate.
    #[default]
    InterpCubic,
    /// Same traversal, linear interpolation only (cheaper, slightly worse
    /// ratio) — used by the ablation benches.
    InterpLinear,
    /// First-order Lorenzo (previous-neighbour difference stencil), the
    /// SZ1.4/SZ2 classic. Works on any data, weaker on very smooth fields.
    Lorenzo,
}

impl Predictor {
    /// Stable on-disk tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Predictor::InterpCubic => 0,
            Predictor::InterpLinear => 1,
            Predictor::Lorenzo => 2,
        }
    }

    /// Inverse of [`Predictor::tag`].
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Predictor::InterpCubic),
            1 => Some(Predictor::InterpLinear),
            2 => Some(Predictor::Lorenzo),
            _ => None,
        }
    }
}

/// Configuration for [`crate::SzCompressor`].
#[derive(Debug, Clone, Copy)]
pub struct SzConfig {
    /// Predictor choice.
    pub predictor: Predictor,
    /// Quantization radius: codes live in `(-radius, radius)`; residuals
    /// outside become escape-coded exact values. 2·radius is the Huffman
    /// alphabet size. SZ3's default is 32768.
    pub quant_radius: u32,
}

impl Default for SzConfig {
    fn default() -> Self {
        Self {
            predictor: Predictor::default(),
            quant_radius: 32768,
        }
    }
}

impl SzConfig {
    /// Config with the Lorenzo predictor.
    pub fn lorenzo() -> Self {
        Self {
            predictor: Predictor::Lorenzo,
            ..Default::default()
        }
    }

    /// Config with linear interpolation.
    pub fn interp_linear() -> Self {
        Self {
            predictor: Predictor::InterpLinear,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_tag_roundtrip() {
        for p in [
            Predictor::InterpCubic,
            Predictor::InterpLinear,
            Predictor::Lorenzo,
        ] {
            assert_eq!(Predictor::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Predictor::from_tag(99), None);
    }

    #[test]
    fn default_matches_sz3_conventions() {
        let c = SzConfig::default();
        assert_eq!(c.predictor, Predictor::InterpCubic);
        assert_eq!(c.quant_radius, 32768);
    }
}
