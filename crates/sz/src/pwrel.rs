//! Point-wise **relative** error bounds via the logarithmic transformation.
//!
//! The paper credits SZ3's tight L∞ control to the transformation scheme of
//! its reference \[33\] (Liang et al., CLUSTER'18): a point-wise relative
//! bound `|x̂ᵢ − xᵢ| ≤ ρ·|xᵢ|` on strictly signed data is equivalent to an
//! *absolute* bound on the logarithm, because
//!
//! ```text
//! |ln|x̂| − ln|x|| ≤ ln(1+ρ)   ⇒   |x̂ − x| ≤ ρ·|x|
//! ```
//!
//! (the exponential of a `±ln(1+ρ)` perturbation multiplies the magnitude
//! by a factor in `[1/(1+ρ), 1+ρ]`, and `1 − 1/(1+ρ) ≤ ρ`). So the pipeline
//! is: take logs of the magnitudes, compress with the ordinary
//! absolute-bound compressor at `eb = ln(1+ρ)`, and carry a sign bitmap.
//! Zeros and non-finite values have no logarithm — they are escape-coded
//! exactly (position + bits), which also matches how real datasets use
//! pw-rel bounds (zeros must stay exact zeros).
//!
//! Point-wise relative bounds complement the QoI machinery: they are the
//! natural request for fields spanning many decades (S3D species), where a
//! single absolute ε either destroys the small values or wastes bits on the
//! large ones.

use crate::compressor::SzCompressor;
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::rle;

/// Magic bytes identifying a pw-rel blob.
const MAGIC: &[u8; 4] = b"PQSR";

impl SzCompressor {
    /// Compresses under the point-wise relative bound
    /// `|x̂ᵢ − xᵢ| ≤ rel·|xᵢ|`; zeros and non-finite values are stored
    /// exactly. `rel` must be positive and finite.
    pub fn compress_pw_rel(&self, data: &[f64], dims: &[usize], rel: f64) -> Result<Vec<u8>> {
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "dims {dims:?} = {n} elements, data has {}",
                data.len()
            )));
        }
        if !(rel.is_finite() && rel > 0.0) {
            return Err(PqrError::InvalidRequest(format!(
                "relative bound must be positive and finite, got {rel}"
            )));
        }

        // magnitude logs, with exact escapes where the log is undefined
        let mut logs = Vec::with_capacity(n);
        let mut signs = Vec::with_capacity(n);
        let mut escape_idx: Vec<u64> = Vec::new();
        let mut escape_val: Vec<f64> = Vec::new();
        let mut filler = 0.0f64; // last valid log keeps the predictor sane
        for (i, &x) in data.iter().enumerate() {
            signs.push(x.is_sign_negative());
            if x == 0.0 || !x.is_finite() {
                escape_idx.push(i as u64);
                escape_val.push(x);
                logs.push(filler);
            } else {
                let l = x.abs().ln();
                filler = l;
                logs.push(l);
            }
        }

        // The quantizer's log-domain bound is tight, and exp/ln round-trips
        // cost ~1 ulp each — shave the bound so "≤ ρ·|x|" survives f64
        // round-off deterministically rather than by luck.
        let eb_log = rel.ln_1p() * (1.0 - 1e-12);
        let inner = self.compress(&logs, dims, eb_log)?;
        let sign_blob = rle::encode_bits_auto(&signs);

        let mut w = ByteWriter::with_capacity(inner.len() + sign_blob.len() + 64);
        w.put_raw(MAGIC);
        w.put_f64(rel);
        w.put_bytes(&inner);
        w.put_bytes(&sign_blob);
        w.put_u64_slice(&escape_idx);
        w.put_f64_slice(&escape_val);
        Ok(w.finish())
    }

    /// Decompresses a blob from [`SzCompressor::compress_pw_rel`]; returns
    /// the reconstruction, its shape, and the relative bound it guarantees.
    pub fn decompress_pw_rel(&self, blob: &[u8]) -> Result<(Vec<f64>, Vec<usize>, f64)> {
        let mut r = ByteReader::new(blob);
        if r.get_raw(4)? != MAGIC {
            return Err(PqrError::CorruptStream("bad pw-rel magic".into()));
        }
        let rel = r.get_f64()?;
        if !(rel.is_finite() && rel > 0.0) {
            return Err(PqrError::CorruptStream("invalid relative bound".into()));
        }
        let inner = r.get_bytes()?;
        let sign_blob = r.get_bytes()?;
        let escape_idx = r.get_u64_vec()?;
        let escape_val = r.get_f64_vec()?;
        if escape_idx.len() != escape_val.len() {
            return Err(PqrError::CorruptStream("escape table mismatch".into()));
        }

        let (logs, dims) = self.decompress(inner)?;
        let n = logs.len();
        let signs = rle::decode_bits_auto(sign_blob, n)?;
        let mut out: Vec<f64> = logs
            .iter()
            .zip(&signs)
            .map(|(&l, &neg)| {
                let m = l.exp();
                if neg {
                    -m
                } else {
                    m
                }
            })
            .collect();
        for (&i, &v) in escape_idx.iter().zip(&escape_val) {
            let i = i as usize;
            if i >= n {
                return Err(PqrError::CorruptStream(format!(
                    "escape index {i} out of range {n}"
                )));
            }
            out[i] = v;
        }
        Ok((out, dims, rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SzConfig;

    /// Worst point-wise relative error over the non-exceptional points.
    fn worst_rel(orig: &[f64], recon: &[f64]) -> f64 {
        orig.iter()
            .zip(recon)
            .filter(|(o, _)| **o != 0.0 && o.is_finite())
            .map(|(o, r)| (o - r).abs() / o.abs())
            .fold(0.0, f64::max)
    }

    fn decades_field(n: usize) -> Vec<f64> {
        // spans ~12 decades with both signs — the pw-rel use case
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                let mag = 10f64.powf(-6.0 + 12.0 * x);
                mag * (x * 37.0).sin().signum() * (1.0 + 0.2 * (x * 91.0).cos())
            })
            .collect()
    }

    #[test]
    fn pw_rel_bound_holds_across_decades() {
        let data = decades_field(8000);
        let c = SzCompressor::default();
        for rel in [1e-1, 1e-3, 1e-6] {
            let blob = c.compress_pw_rel(&data, &[8000], rel).unwrap();
            let (recon, dims, got_rel) = c.decompress_pw_rel(&blob).unwrap();
            assert_eq!(dims, vec![8000]);
            assert_eq!(got_rel, rel);
            let w = worst_rel(&data, &recon);
            assert!(w <= rel, "rel={rel}: worst {w}");
        }
    }

    #[test]
    fn zeros_and_nonfinite_exact() {
        let mut data = decades_field(500);
        data[3] = 0.0;
        data[77] = -0.0;
        data[100] = f64::NAN;
        data[200] = f64::NEG_INFINITY;
        let c = SzCompressor::default();
        let blob = c.compress_pw_rel(&data, &[500], 1e-2).unwrap();
        let (recon, _, _) = c.decompress_pw_rel(&blob).unwrap();
        assert_eq!(recon[3], 0.0);
        assert_eq!(recon[77], 0.0);
        assert!(recon[100].is_nan());
        assert!(recon[200] == f64::NEG_INFINITY);
        assert!(worst_rel(&data, &recon) <= 1e-2);
    }

    #[test]
    fn signs_preserved_exactly() {
        let data = decades_field(2000);
        let c = SzCompressor::default();
        let blob = c.compress_pw_rel(&data, &[2000], 0.5).unwrap();
        let (recon, _, _) = c.decompress_pw_rel(&blob).unwrap();
        for (i, (&o, &r)) in data.iter().zip(&recon).enumerate() {
            if o != 0.0 {
                assert_eq!(o.is_sign_negative(), r.is_sign_negative(), "idx {i}");
            }
        }
    }

    #[test]
    fn pw_rel_beats_absolute_on_wide_dynamic_range() {
        // the motivating comparison: to protect the smallest magnitudes, an
        // absolute bound must be tiny everywhere and pays for it in bits
        let data = decades_field(20_000);
        let rel = 1e-3;
        let c = SzCompressor::default();
        let pw = c.compress_pw_rel(&data, &[20_000], rel).unwrap().len();
        let smallest = data
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .fold(f64::INFINITY, f64::min);
        let abs = c.compress(&data, &[20_000], rel * smallest).unwrap().len();
        assert!(
            (pw as f64) < 0.7 * abs as f64,
            "pw-rel {pw} B should be well under absolute {abs} B"
        );
    }

    #[test]
    fn works_with_every_predictor() {
        let data = decades_field(3000);
        for cfg in [
            SzConfig::default(),
            SzConfig::lorenzo(),
            SzConfig::interp_linear(),
        ] {
            let c = SzCompressor::new(cfg);
            let blob = c.compress_pw_rel(&data, &[3000], 1e-4).unwrap();
            let (recon, _, _) = c.decompress_pw_rel(&blob).unwrap();
            assert!(worst_rel(&data, &recon) <= 1e-4, "{cfg:?}");
        }
    }

    #[test]
    fn multidimensional_pw_rel() {
        let data = decades_field(30 * 40);
        let c = SzCompressor::default();
        let blob = c.compress_pw_rel(&data, &[30, 40], 1e-5).unwrap();
        let (recon, dims, _) = c.decompress_pw_rel(&blob).unwrap();
        assert_eq!(dims, vec![30, 40]);
        assert!(worst_rel(&data, &recon) <= 1e-5);
    }

    #[test]
    fn invalid_requests_rejected() {
        let c = SzCompressor::default();
        for rel in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(c.compress_pw_rel(&[1.0], &[1], rel).is_err());
        }
        assert!(c.compress_pw_rel(&[1.0, 2.0], &[3], 0.1).is_err());
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let data = decades_field(100);
        let c = SzCompressor::default();
        let blob = c.compress_pw_rel(&data, &[100], 1e-3).unwrap();
        assert!(c.decompress_pw_rel(&blob[..8]).is_err());
        let mut bad = blob.clone();
        bad[1] = b'X';
        assert!(c.decompress_pw_rel(&bad).is_err());
        // an absolute-bound blob is not a pw-rel blob
        let abs_blob = c.compress(&data, &[100], 1e-3).unwrap();
        assert!(c.decompress_pw_rel(&abs_blob).is_err());
    }

    #[test]
    fn all_zero_field() {
        let c = SzCompressor::default();
        let blob = c.compress_pw_rel(&[0.0; 300], &[300], 1e-3).unwrap();
        let (recon, _, _) = c.decompress_pw_rel(&blob).unwrap();
        assert!(recon.iter().all(|&v| v == 0.0));
    }
}
