//! The full compression pipeline: predict → quantize → Huffman → zero-RLE.

use crate::config::{Predictor, SzConfig};
use crate::predictor::traverse;
use crate::quantizer::{Quantized, Quantizer, ESCAPE};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::{huffman, rle};

/// Magic bytes identifying a pqr-sz blob.
const MAGIC: &[u8; 4] = b"PQSZ";
/// Format version.
const VERSION: u8 = 1;

/// Error-bounded lossy compressor (SZ3 stand-in).
///
/// The compressor is stateless and cheap to clone; all per-call state lives
/// on the stack. See the crate docs for the pipeline description and the
/// guarantee: `max |xᵢ − x̂ᵢ| ≤ eb` for every point.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor {
    cfg: SzConfig,
}

impl SzCompressor {
    /// Creates a compressor with the given configuration.
    pub fn new(cfg: SzConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SzConfig {
        &self.cfg
    }

    /// Compresses `data` (row-major, shape `dims`) under the absolute error
    /// bound `eb`. Returns a self-describing blob.
    pub fn compress(&self, data: &[f64], dims: &[usize], eb: f64) -> Result<Vec<u8>> {
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "dims {:?} = {n} elements, data has {}",
                dims,
                data.len()
            )));
        }
        // NaN-safe positivity check (NaN fails the comparison)
        if !(eb.is_finite() && eb > 0.0) {
            return Err(PqrError::InvalidRequest(format!(
                "error bound must be positive and finite, got {eb}"
            )));
        }

        let quant = Quantizer::new(eb, self.cfg.quant_radius);
        let mut symbols: Vec<u32> = Vec::with_capacity(n);
        let mut escapes: Vec<f64> = Vec::new();
        let mut recon = vec![0.0f64; n];
        traverse(
            self.cfg.predictor,
            dims,
            &mut recon,
            |idx, pred| match quant.quantize(data[idx], pred) {
                Quantized::Code { symbol, recon } => {
                    symbols.push(symbol);
                    recon
                }
                Quantized::Escape => {
                    symbols.push(ESCAPE);
                    escapes.push(data[idx]);
                    data[idx]
                }
            },
        );

        let huff = huffman::encode(&symbols, quant.alphabet())?;
        let packed = rle::encode_bytes(&huff);

        let mut w = ByteWriter::with_capacity(packed.len() + escapes.len() * 8 + 64);
        w.put_raw(MAGIC);
        w.put_u8(VERSION);
        w.put_u8(self.cfg.predictor.tag());
        w.put_u32(self.cfg.quant_radius);
        w.put_f64(eb);
        w.put_u8(dims.len() as u8);
        for &d in dims {
            w.put_u64(d as u64);
        }
        w.put_bytes(&packed);
        w.put_f64_slice(&escapes);
        Ok(w.finish())
    }

    /// Decompresses a blob from [`SzCompressor::compress`]; returns the
    /// reconstruction and its shape. Works regardless of the predictor this
    /// instance was configured with (the blob is self-describing).
    pub fn decompress(&self, blob: &[u8]) -> Result<(Vec<f64>, Vec<usize>)> {
        let mut r = ByteReader::new(blob);
        if r.get_raw(4)? != MAGIC {
            return Err(PqrError::CorruptStream("bad magic".into()));
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(PqrError::CorruptStream(format!(
                "unsupported version {version}"
            )));
        }
        let predictor = Predictor::from_tag(r.get_u8()?)
            .ok_or_else(|| PqrError::CorruptStream("unknown predictor tag".into()))?;
        let radius = r.get_u32()?;
        let eb = r.get_f64()?;
        if !(eb.is_finite() && eb > 0.0) || radius < 2 {
            return Err(PqrError::CorruptStream("invalid header".into()));
        }
        let nd = r.get_u8()? as usize;
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        let n: usize = dims.iter().product();
        let packed = r.get_bytes()?;
        let escapes = r.get_f64_vec()?;

        let huff = rle::decode_bytes(packed)?;
        let symbols = huffman::decode(&huff)?;
        if symbols.len() != n {
            return Err(PqrError::CorruptStream(format!(
                "symbol count {} != element count {n}",
                symbols.len()
            )));
        }

        let quant = Quantizer::new(eb, radius);
        let mut recon = vec![0.0f64; n];
        let mut sym_it = symbols.iter();
        let mut esc_it = escapes.iter();
        let mut short = false;
        traverse(predictor, &dims, &mut recon, |_, pred| {
            let Some(&s) = sym_it.next() else {
                short = true;
                return 0.0;
            };
            if s == ESCAPE {
                match esc_it.next() {
                    Some(&v) => v,
                    None => {
                        short = true;
                        0.0
                    }
                }
            } else {
                quant.reconstruct(s, pred)
            }
        });
        if short {
            return Err(PqrError::CorruptStream("escape list truncated".into()));
        }
        Ok((recon, dims))
    }

    /// Convenience: compressed size in bytes for `data` under `eb`.
    pub fn compressed_size(&self, data: &[f64], dims: &[usize], eb: f64) -> Result<usize> {
        Ok(self.compress(data, dims, eb)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_util::stats::max_abs_diff;

    fn smooth_1d(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x * 12.0).sin() + 0.3 * (x * 40.0).cos() + 2.0 * x
            })
            .collect()
    }

    fn smooth_3d(d: [usize; 3]) -> (Vec<f64>, Vec<usize>) {
        let mut v = Vec::with_capacity(d[0] * d[1] * d[2]);
        for i in 0..d[0] {
            for j in 0..d[1] {
                for k in 0..d[2] {
                    let (x, y, z) = (
                        i as f64 / d[0] as f64,
                        j as f64 / d[1] as f64,
                        k as f64 / d[2] as f64,
                    );
                    v.push((3.0 * x).sin() * (2.0 * y).cos() + z * z);
                }
            }
        }
        (v, d.to_vec())
    }

    #[test]
    fn roundtrip_respects_error_bound_1d() {
        let data = smooth_1d(5000);
        for eb in [1e-1, 1e-3, 1e-6, 1e-10] {
            for cfg in [
                SzConfig::default(),
                SzConfig::lorenzo(),
                SzConfig::interp_linear(),
            ] {
                let c = SzCompressor::new(cfg);
                let blob = c.compress(&data, &[5000], eb).unwrap();
                let (recon, dims) = c.decompress(&blob).unwrap();
                assert_eq!(dims, vec![5000]);
                let err = max_abs_diff(&data, &recon);
                assert!(err <= eb, "{cfg:?} eb={eb}: err {err}");
            }
        }
    }

    #[test]
    fn roundtrip_respects_error_bound_3d() {
        let (data, dims) = smooth_3d([20, 24, 17]);
        for eb in [1e-2, 1e-5] {
            for cfg in [SzConfig::default(), SzConfig::lorenzo()] {
                let c = SzCompressor::new(cfg);
                let blob = c.compress(&data, &dims, eb).unwrap();
                let (recon, rdims) = c.decompress(&blob).unwrap();
                assert_eq!(rdims, dims);
                assert!(max_abs_diff(&data, &recon) <= eb);
            }
        }
    }

    #[test]
    fn smaller_eb_larger_blob() {
        let data = smooth_1d(20_000);
        let c = SzCompressor::default();
        let mut last = 0usize;
        for eb in [1e-1, 1e-3, 1e-5, 1e-7, 1e-9] {
            let size = c.compressed_size(&data, &[20_000], eb).unwrap();
            assert!(size > last, "eb={eb}: {size} !> {last}");
            last = size;
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_1d(100_000);
        let c = SzCompressor::default();
        let blob = c.compress(&data, &[100_000], 1e-4).unwrap();
        let ratio = (100_000.0 * 8.0) / blob.len() as f64;
        assert!(ratio > 8.0, "ratio {ratio} too low for smooth data");
    }

    #[test]
    fn random_noise_still_bounded() {
        // xorshift noise — incompressible but the bound must still hold
        let mut s = 42u64;
        let data: Vec<f64> = (0..4096)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64) * 200.0 - 100.0
            })
            .collect();
        let c = SzCompressor::default();
        let blob = c.compress(&data, &[4096], 1e-2).unwrap();
        let (recon, _) = c.decompress(&blob).unwrap();
        assert!(max_abs_diff(&data, &recon) <= 1e-2);
    }

    #[test]
    fn constant_field_is_tiny() {
        let data = vec![3.25; 50_000];
        let c = SzCompressor::default();
        let blob = c.compress(&data, &[50_000], 1e-8).unwrap();
        assert!(blob.len() < 2500, "constant field blob {} B", blob.len());
        let (recon, _) = c.decompress(&blob).unwrap();
        assert!(max_abs_diff(&data, &recon) <= 1e-8);
    }

    #[test]
    fn special_values_survive() {
        let mut data = smooth_1d(100);
        data[10] = f64::NAN;
        data[50] = f64::INFINITY;
        data[70] = -1e300;
        let c = SzCompressor::default();
        let blob = c.compress(&data, &[100], 1e-3).unwrap();
        let (recon, _) = c.decompress(&blob).unwrap();
        assert!(recon[10].is_nan());
        assert!(recon[50].is_infinite() && recon[50] > 0.0);
        for (i, (&a, &b)) in data.iter().zip(&recon).enumerate() {
            if a.is_finite() {
                assert!((a - b).abs() <= 1e-3, "idx {i}");
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let c = SzCompressor::default();
        assert!(matches!(
            c.compress(&[1.0, 2.0], &[3], 1e-3),
            Err(PqrError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn invalid_eb_rejected() {
        let c = SzCompressor::default();
        for eb in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(c.compress(&[1.0], &[1], eb).is_err(), "eb={eb}");
        }
    }

    #[test]
    fn corrupt_blob_rejected() {
        let data = smooth_1d(256);
        let c = SzCompressor::default();
        let blob = c.compress(&data, &[256], 1e-3).unwrap();
        assert!(c.decompress(&blob[..10]).is_err());
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(c.decompress(&bad).is_err());
    }

    #[test]
    fn empty_input_roundtrips() {
        let c = SzCompressor::default();
        let blob = c.compress(&[], &[0], 1e-3).unwrap();
        let (recon, dims) = c.decompress(&blob).unwrap();
        assert!(recon.is_empty());
        assert_eq!(dims, vec![0]);
    }

    #[test]
    fn decompress_ignores_local_config() {
        // blob self-describes its predictor: decompress with a differently
        // configured instance must still work
        let data = smooth_1d(1000);
        let blob = SzCompressor::new(SzConfig::lorenzo())
            .compress(&data, &[1000], 1e-4)
            .unwrap();
        let (recon, _) = SzCompressor::new(SzConfig::default())
            .decompress(&blob)
            .unwrap();
        assert!(max_abs_diff(&data, &recon) <= 1e-4);
    }

    #[test]
    fn interp_beats_lorenzo_on_smooth_data() {
        // the design rationale for defaulting to interpolation (ablation)
        let data = smooth_1d(50_000);
        let interp = SzCompressor::default()
            .compressed_size(&data, &[50_000], 1e-5)
            .unwrap();
        let lorenzo = SzCompressor::new(SzConfig::lorenzo())
            .compressed_size(&data, &[50_000], 1e-5)
            .unwrap();
        assert!(
            interp < lorenzo,
            "interp {interp} B should beat lorenzo {lorenzo} B"
        );
    }
}
