//! Property-based tests of the SZ3 stand-in's contract: any data, any
//! shape, any positive error bound — reconstruction stays within `eb`
//! pointwise and the blob decodes to the exact same thing every time.

use pqr_sz::{SzCompressor, SzConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SzConfig> {
    prop_oneof![
        Just(SzConfig::default()),
        Just(SzConfig::lorenzo()),
        Just(SzConfig::interp_linear()),
    ]
}

/// Mixed smooth + jumpy data: worst of both worlds for predictors.
fn arb_data() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0..100.0f64, 1..400).prop_map(|mut v| {
        // overlay a smooth trend so both predictor paths are used
        for (i, x) in v.iter_mut().enumerate() {
            *x = 0.3 * *x + 10.0 * ((i as f64) * 0.1).sin();
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_within_bound_1d(
        data in arb_data(),
        cfg in arb_config(),
        eb_exp in -9..0i32,
    ) {
        let eb = 10f64.powi(eb_exp);
        let comp = SzCompressor::new(cfg);
        let n = data.len();
        let blob = comp.compress(&data, &[n], eb).unwrap();
        let (recon, dims) = comp.decompress(&blob).unwrap();
        prop_assert_eq!(dims, vec![n]);
        for (i, (a, b)) in data.iter().zip(&recon).enumerate() {
            prop_assert!((a - b).abs() <= eb, "idx {i}: |{a} - {b}| > {eb}");
        }
    }

    #[test]
    fn roundtrip_within_bound_nd(
        d0 in 1usize..12,
        d1 in 1usize..12,
        d2 in 1usize..8,
        cfg in arb_config(),
        seed in 0u64..1000,
    ) {
        let n = d0 * d1 * d2;
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64) * 4.0 + ((i as f64) * 0.3).cos()
            })
            .collect();
        let eb = 1e-4;
        let comp = SzCompressor::new(cfg);
        let blob = comp.compress(&data, &[d0, d1, d2], eb).unwrap();
        let (recon, dims) = comp.decompress(&blob).unwrap();
        prop_assert_eq!(dims, vec![d0, d1, d2]);
        for (a, b) in data.iter().zip(&recon) {
            prop_assert!((a - b).abs() <= eb);
        }
    }

    #[test]
    fn decompression_is_deterministic(
        data in arb_data(),
        cfg in arb_config(),
    ) {
        let comp = SzCompressor::new(cfg);
        let n = data.len();
        let blob = comp.compress(&data, &[n], 1e-3).unwrap();
        let (r1, _) = comp.decompress(&blob).unwrap();
        let (r2, _) = comp.decompress(&blob).unwrap();
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn truncated_blobs_error_not_panic(
        data in proptest::collection::vec(-10.0..10.0f64, 16..64),
        cut in 1usize..40,
    ) {
        let comp = SzCompressor::default();
        let n = data.len();
        let blob = comp.compress(&data, &[n], 1e-3).unwrap();
        let cut = cut.min(blob.len().saturating_sub(1));
        // must not panic; Err or (rarely) a valid prefix parse are both fine
        let _ = comp.decompress(&blob[..cut]);
    }

    #[test]
    fn pw_rel_bound_holds_for_arbitrary_data(
        data in proptest::collection::vec(
            prop_oneof![
                -1e6f64..1e6,
                -1e-6f64..1e-6,
                Just(0.0),
            ],
            8..500,
        ),
        rel_exp in -6..-1i32,
    ) {
        let rel = 10f64.powi(rel_exp);
        let comp = SzCompressor::default();
        let n = data.len();
        let blob = comp.compress_pw_rel(&data, &[n], rel).unwrap();
        let (recon, dims, got) = comp.decompress_pw_rel(&blob).unwrap();
        prop_assert_eq!(dims, vec![n]);
        prop_assert_eq!(got, rel);
        for (i, (&o, &r)) in data.iter().zip(&recon).enumerate() {
            if o == 0.0 {
                prop_assert_eq!(r, 0.0, "zero at {} must stay exact", i);
            } else {
                prop_assert!(
                    (o - r).abs() <= rel * o.abs(),
                    "idx {}: |{} - {}| > {}*|x|", i, o, r, rel
                );
            }
        }
    }

    #[test]
    fn pw_rel_hostile_blobs_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let comp = SzCompressor::default();
        let _ = comp.decompress_pw_rel(&junk);
        let mut prefixed = b"PQSR".to_vec();
        prefixed.extend_from_slice(&junk);
        let _ = comp.decompress_pw_rel(&prefixed);
    }
}
