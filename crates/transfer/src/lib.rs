//! # pqr-transfer — remote storage + wide-area transfer simulation
//!
//! §VI-D of the paper measures end-to-end retrieval of the GE-large dataset
//! from MCC (Kentucky) to Anvil (Purdue) over Globus with 96 cores, one
//! block per core. We cannot measure a WAN here, so this crate simulates
//! the wire and keeps everything else real:
//!
//! * **real**: the refactored representations, the QoI retrieval engine that
//!   decides *how many bytes* each block needs (the paper's claim is a
//!   bytes-moved argument), and the per-block retrieval compute time
//!   (measured wall clock).
//! * **simulated**: the pipe. [`NetworkModel`] charges
//!   `latency + requests·overhead + bytes/bandwidth`, calibrated to the
//!   paper's own measurement (4.67 GB of raw data in ≈11.7 s ⇒ ≈3.2 Gb/s
//!   effective Globus throughput).
//!
//! The [`pipeline`] module runs one retrieval per block on a worker pool
//! (dynamic scheduling over `pqr_util::par` scoped threads) and reports
//! the same decomposition as Fig. 9: retrieval time + transfer time vs the
//! raw-data baseline.

pub mod network;
pub mod pipeline;
pub mod store;
pub mod wire;

pub use network::NetworkModel;
pub use pipeline::{run_pipeline, BlockResult, PipelineConfig, PipelineResult};
pub use store::{FetchCounters, RemoteBlockSource, RemoteStore};
