//! Wide-area network model calibrated to the paper's Globus measurements.

/// A shared-pipe network model: transferring `bytes` in `requests` chunks
/// costs `latency + requests·per_request_overhead + bytes·8/bandwidth`.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Effective line rate in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-time session latency in seconds (auth, handshakes).
    pub latency_s: f64,
    /// Per-request overhead in seconds (Globus batches files, so this is
    /// small but nonzero).
    pub per_request_overhead_s: f64,
}

impl NetworkModel {
    /// Calibrated to §VI-D: the paper transfers the 4.67 GB raw GE-large
    /// subset (3 variables) in ≈11.7 s ⇒ ≈3.2 Gb/s effective throughput
    /// including Globus overheads.
    pub fn globus_mcc_to_anvil() -> Self {
        Self {
            bandwidth_gbps: 3.3,
            latency_s: 0.35,
            per_request_overhead_s: 0.002,
        }
    }

    /// An ideal LAN (for ablation benches: when the wire is fast, the
    /// retrieval compute dominates and progressive retrieval wins less).
    pub fn lan_100g() -> Self {
        Self {
            bandwidth_gbps: 100.0,
            latency_s: 0.001,
            per_request_overhead_s: 1e-5,
        }
    }

    /// A slow last-mile link (progressive retrieval wins the most here).
    pub fn wan_slow() -> Self {
        Self {
            bandwidth_gbps: 0.5,
            latency_s: 1.0,
            per_request_overhead_s: 0.01,
        }
    }

    /// Simulated wall-clock seconds to move `bytes` in `requests` chunks.
    pub fn transfer_secs(&self, bytes: usize, requests: usize) -> f64 {
        assert!(self.bandwidth_gbps > 0.0);
        self.latency_s
            + requests as f64 * self.per_request_overhead_s
            + bytes as f64 * 8.0 / (self.bandwidth_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_baseline() {
        // 4.67 GB over the calibrated pipe must land near the paper's 11.7 s
        let net = NetworkModel::globus_mcc_to_anvil();
        let t = net.transfer_secs(4_670_000_000, 96);
        assert!((10.0..14.0).contains(&t), "baseline transfer {t} s");
    }

    #[test]
    fn fewer_bytes_less_time() {
        let net = NetworkModel::globus_mcc_to_anvil();
        let full = net.transfer_secs(4_670_000_000, 96);
        let quarter = net.transfer_secs(4_670_000_000 / 4, 96);
        assert!(quarter < full / 2.0);
    }

    #[test]
    fn latency_floors_small_transfers() {
        let net = NetworkModel::globus_mcc_to_anvil();
        let t = net.transfer_secs(1, 1);
        assert!(t >= net.latency_s);
    }

    #[test]
    fn request_overhead_accumulates() {
        let net = NetworkModel::globus_mcc_to_anvil();
        let few = net.transfer_secs(1_000_000, 1);
        let many = net.transfer_secs(1_000_000, 10_000);
        assert!(many > few + 10.0);
    }

    #[test]
    fn presets_ordered_by_speed() {
        let bytes = 1_000_000_000;
        let lan = NetworkModel::lan_100g().transfer_secs(bytes, 10);
        let wan = NetworkModel::globus_mcc_to_anvil().transfer_secs(bytes, 10);
        let slow = NetworkModel::wan_slow().transfer_secs(bytes, 10);
        assert!(lan < wan && wan < slow);
    }
}
