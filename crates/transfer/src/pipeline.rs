//! The 96-worker block retrieval pipeline of §VI-D.
//!
//! Each worker claims a block, runs the QoI-preserving retrieval engine on
//! it (deciding how many fragment bytes that block needs for the requested
//! tolerance), and the fetched bytes ride the shared simulated pipe. The
//! result decomposes total time exactly as Fig. 9 does:
//!
//! ```text
//! total = retrieval (real, wall-clock, parallel) + transfer (simulated)
//! ```

use crate::network::NetworkModel;
use crate::store::RemoteStore;
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_util::error::Result;
use pqr_util::par::par_dynamic;
use pqr_util::timer::Stopwatch;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Worker count (paper: 96, one per block).
    pub workers: usize,
    /// The simulated pipe.
    pub network: NetworkModel,
    /// Retrieval engine knobs.
    pub engine: EngineConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            workers: 96,
            network: NetworkModel::globus_mcc_to_anvil(),
            engine: EngineConfig {
                // blocks are the parallel unit — nested scan/decode threads
                // (or a per-round prefetcher thread per block) would
                // oversubscribe and distort per-block timings
                parallel_scan: false,
                workers: 1,
                overlap_io: false,
                ..EngineConfig::default()
            },
        }
    }
}

/// Per-block outcome.
#[derive(Debug, Clone, Default)]
pub struct BlockResult {
    /// Bytes this block's retrieval fetched.
    pub bytes: usize,
    /// Whether every QoI tolerance was met.
    pub satisfied: bool,
    /// Max estimated QoI error (first spec).
    pub max_est_error: f64,
    /// Engine iterations used.
    pub iterations: usize,
    /// Measured compute seconds for this block's retrieval.
    pub secs: f64,
}

/// Whole-pipeline outcome (one Fig. 9 data point).
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Per-block outcomes.
    pub blocks: Vec<BlockResult>,
    /// Total fetched bytes across blocks.
    pub total_bytes: usize,
    /// Measured wall-clock retrieval time (parallel section), seconds.
    pub retrieval_secs: f64,
    /// Simulated wire time for the fetched bytes, seconds.
    pub transfer_secs: f64,
}

impl PipelineResult {
    /// Total end-to-end time (the paper's "data transfer time") using the
    /// *measured* parallel section on this machine.
    pub fn total_secs(&self) -> f64 {
        self.retrieval_secs + self.transfer_secs
    }

    /// Retrieval makespan on a machine with `workers` real cores, scheduled
    /// LPT (longest block first) from the measured per-block times.
    ///
    /// The paper runs 96 blocks on 96 physical cores; a laptop runs them
    /// oversubscribed, so the measured wall time overstates the paper's
    /// setup by ~(96 / local cores). This reconstruction is what Fig. 9
    /// should be compared against.
    pub fn makespan_secs(&self, workers: usize) -> f64 {
        let workers = workers.max(1);
        let mut times: Vec<f64> = self.blocks.iter().map(|b| b.secs).collect();
        times.sort_by(|a, b| b.total_cmp(a));
        let mut loads = vec![0.0f64; workers];
        for t in times {
            // assign to the least-loaded worker
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty loads");
            loads[idx] += t;
        }
        loads.iter().copied().fold(0.0, f64::max)
    }

    /// End-to-end time with the retrieval makespan reconstructed for
    /// `workers` physical cores (the Fig. 9 configuration).
    pub fn total_secs_at(&self, workers: usize) -> f64 {
        self.makespan_secs(workers) + self.transfer_secs
    }

    /// True when every block met its tolerances.
    pub fn all_satisfied(&self) -> bool {
        self.blocks.iter().all(|b| b.satisfied)
    }
}

/// Runs the QoI-preserving retrieval on every block of the store and
/// charges the fetched bytes to the simulated network.
///
/// `specs_for_block` produces the QoI requests for a given block index
/// (ranges differ per block, so specs are per-block).
pub fn run_pipeline(
    store: &std::sync::Arc<RemoteStore>,
    cfg: &PipelineConfig,
    specs_for_block: impl Fn(usize) -> Vec<QoiSpec> + Sync,
) -> Result<PipelineResult> {
    let nblocks = store.num_blocks();
    // Run at most one thread per physical core: oversubscribing (96 logical
    // workers on a laptop) would contaminate the per-block wall times that
    // makespan_secs() reconstructs from. Fetched bytes are independent of
    // the worker count.
    let threads = cfg.workers.min(pqr_util::par::worker_count());
    let sw = Stopwatch::started();
    let blocks: Vec<BlockResult> = par_dynamic(nblocks, threads, |i| {
        let t0 = std::time::Instant::now();
        // the engine refines through the store's fragment source — the
        // same code path as local and file-backed archives — so every
        // fetched fragment lands in the store's network/cache tallies
        let source = store.block_source(i).expect("block index in range");
        let specs = specs_for_block(i);
        let mut engine = match RetrievalEngine::from_source(std::sync::Arc::new(source), cfg.engine)
        {
            Ok(e) => e,
            Err(_) => return BlockResult::default(),
        };
        match engine.retrieve(&specs) {
            Ok(report) => BlockResult {
                bytes: report.total_fetched,
                satisfied: report.satisfied,
                max_est_error: report.max_est_errors.first().copied().unwrap_or(0.0),
                iterations: report.iterations,
                secs: t0.elapsed().as_secs_f64(),
            },
            Err(_) => BlockResult::default(),
        }
    });
    let retrieval_secs = sw.secs();
    let total_bytes: usize = blocks.iter().map(|b| b.bytes).sum();
    // The wire model charges per-request overhead per *block*, not per
    // fragment: a block's fragment fetches are decided in one retrieval
    // pass and ride one pipelined bulk request, Globus-style (the paper's
    // §VI-D setup). `FetchCounters` tallies finer-grained store-side
    // round-trips (`requests`) and fragments (`misses()`) — engines batch
    // each refinement round through `read_many`, so `requests` sits
    // between the block count and the fragment count.
    let transfer_secs = cfg.network.transfer_secs(total_bytes, nblocks);
    Ok(PipelineResult {
        blocks,
        total_bytes,
        retrieval_secs,
        transfer_secs,
    })
}

/// The Fig. 9 baseline: moving the raw (uncompressed) involved fields.
pub fn baseline_transfer_secs(store: &RemoteStore, cfg: &PipelineConfig, fields: usize) -> f64 {
    let total_fields: usize = store.block(0).map(|b| b.num_fields()).unwrap_or(1).max(1);
    let bytes = store.raw_bytes() * fields / total_fields;
    cfg.network.transfer_secs(bytes, store.num_blocks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_datagen::ge::{self, GeConfig};
    use pqr_progressive::field::Dataset;
    use pqr_progressive::refactored::Scheme;
    use pqr_qoi::library::velocity_magnitude;

    /// Builds a small GE-large-like store: per-block refactored velocity
    /// fields plus per-block VTOT ranges.
    fn build_store(blocks: usize, scheme: Scheme) -> (std::sync::Arc<RemoteStore>, Vec<f64>) {
        let (store, ranges) = build_store_sized(blocks, scheme, 500);
        (std::sync::Arc::new(store), ranges)
    }

    fn build_store_sized(
        blocks: usize,
        scheme: Scheme,
        mean_block_len: usize,
    ) -> (RemoteStore, Vec<f64>) {
        let cfg = GeConfig {
            blocks,
            mean_block_len,
            wall_fraction: 0.02,
            seed: 1234,
        };
        let raw = ge::generate(&cfg);
        let mut ranges = Vec::with_capacity(blocks);
        let refactored: Vec<_> = raw
            .iter()
            .map(|b| {
                let mut ds = Dataset::new(&b.dims);
                for name in ["VelocityX", "VelocityY", "VelocityZ"] {
                    ds.add_field(name, b.field(name).unwrap().to_vec()).unwrap();
                }
                ranges.push(ds.qoi_range(&velocity_magnitude(0, 3)).unwrap());
                let mut rd = ds
                    .refactor_with_bounds(scheme, &[1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6])
                    .unwrap();
                rd.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
                rd
            })
            .collect();
        (RemoteStore::new(refactored), ranges)
    }

    /// Engine-counted bytes that never ride the fragment path: the mask is
    /// manifest metadata, charged by the engine but not fetched by id.
    fn mask_bytes(store: &RemoteStore) -> usize {
        (0..store.num_blocks())
            .map(|i| {
                store
                    .block(i)
                    .unwrap()
                    .mask()
                    .map_or(0, |m| m.storage_bytes())
            })
            .sum()
    }

    #[test]
    fn pipeline_meets_tolerances_and_counts_bytes() {
        let (store, ranges) = build_store(8, Scheme::PmgardHb);
        let cfg = PipelineConfig {
            workers: 4,
            ..Default::default()
        };
        let result = run_pipeline(&store, &cfg, |i| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-3,
                ranges[i],
            )]
        })
        .unwrap();
        assert!(result.all_satisfied());
        assert_eq!(result.blocks.len(), 8);
        // every non-mask byte the engines counted went through the store's
        // fragment path; batched rounds keep round-trips well below the
        // per-fragment count but above one per block (metadata + rounds)
        let c = store.counters();
        assert_eq!(result.total_bytes, c.bytes + mask_bytes(&store));
        assert!(c.requests > store.num_blocks(), "metadata + round batches");
        assert!(
            c.requests < c.fragments,
            "batching must collapse round-trips below fragment count"
        );
        assert_eq!(c.hits(), 0, "no cache attached");
        assert!(result.transfer_secs > 0.0);
        assert!(result.total_secs() >= result.transfer_secs);
    }

    #[test]
    fn cached_store_turns_refetches_into_hits() {
        let (store, ranges) = build_store_sized(4, Scheme::PmgardHb, 500);
        let store = std::sync::Arc::new(store.with_cache(64 << 20));
        let cfg = PipelineConfig {
            workers: 2,
            ..Default::default()
        };
        let specs = |i: usize| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-3,
                ranges[i],
            )]
        };
        let first = run_pipeline(&store, &cfg, specs).unwrap();
        let cold = store.counters();
        assert_eq!(cold.hits(), 0);

        // the same request series again: fresh engines, warm cache — the
        // wire moves nothing new
        let second = run_pipeline(&store, &cfg, specs).unwrap();
        let warm = store.counters();
        assert_eq!(second.total_bytes, first.total_bytes);
        assert_eq!(warm.bytes, cold.bytes, "no new network bytes");
        assert_eq!(warm.misses(), cold.misses());
        assert!(warm.hits() >= cold.misses(), "every refetch should hit");
    }

    #[test]
    fn tighter_tolerance_more_bytes_more_time() {
        let (store, ranges) = build_store(6, Scheme::PmgardHb);
        let cfg = PipelineConfig {
            workers: 3,
            ..Default::default()
        };
        let loose = run_pipeline(&store, &cfg, |i| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-1,
                ranges[i],
            )]
        })
        .unwrap();
        store.reset_counters();
        let tight = run_pipeline(&store, &cfg, |i| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-5,
                ranges[i],
            )]
        })
        .unwrap();
        assert!(tight.total_bytes > loose.total_bytes);
        assert!(tight.transfer_secs > loose.transfer_secs);
    }

    #[test]
    fn progressive_beats_baseline_at_tolerable_error() {
        // the paper's headline: 2.02× at τ = 1e-5 on 2.2M-point blocks. At
        // test scale, fixed per-plane metadata is a visible fraction, so the
        // blocks here are bigger than the other tests' and the assertion is
        // a plain byte/time win (the 2× factor is exercised by the fig9
        // harness at realistic sizes).
        let (store, ranges) = build_store_sized(6, Scheme::PmgardHb, 4000);
        let store = std::sync::Arc::new(store);
        let cfg = PipelineConfig {
            workers: 4,
            network: crate::NetworkModel::wan_slow(),
            ..Default::default()
        };
        let result = run_pipeline(&store, &cfg, |i| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-5,
                ranges[i],
            )]
        })
        .unwrap();
        assert!(result.all_satisfied());
        let raw = store.raw_bytes();
        assert!(
            result.total_bytes < raw,
            "progressive {} B !< raw {} B",
            result.total_bytes,
            raw
        );
        let baseline = baseline_transfer_secs(&store, &cfg, 3);
        assert!(
            result.transfer_secs < baseline,
            "progressive {} s !< baseline {} s",
            result.transfer_secs,
            baseline
        );
    }

    #[test]
    fn makespan_reconstruction_sane() {
        let (store, ranges) = build_store(8, Scheme::PmgardHb);
        let cfg = PipelineConfig {
            workers: 2,
            ..Default::default()
        };
        let result = run_pipeline(&store, &cfg, |i| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-3,
                ranges[i],
            )]
        })
        .unwrap();
        let sum: f64 = result.blocks.iter().map(|b| b.secs).sum();
        let max: f64 = result.blocks.iter().map(|b| b.secs).fold(0.0, f64::max);
        // one worker per block → makespan = slowest block
        let m96 = result.makespan_secs(96);
        assert!((m96 - max).abs() < 1e-12);
        // single worker → makespan = total work
        let m1 = result.makespan_secs(1);
        assert!((m1 - sum).abs() < 1e-9);
        // more workers never slower
        assert!(result.makespan_secs(4) <= m1 + 1e-12);
        assert!(result.total_secs_at(96) <= result.total_secs() + 1e-9);
    }

    #[test]
    fn pipeline_works_over_pzfp_blocks() {
        // the representation extension slots into the distributed path too
        let (store, ranges) = build_store(6, Scheme::Pzfp);
        let cfg = PipelineConfig {
            workers: 3,
            ..Default::default()
        };
        let result = run_pipeline(&store, &cfg, |i| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                1e-3,
                ranges[i],
            )]
        })
        .unwrap();
        assert!(result.all_satisfied());
        assert_eq!(
            result.total_bytes,
            store.counters().bytes + mask_bytes(&store)
        );
        // still far below moving the raw blocks
        assert!(result.total_bytes < store.raw_bytes() / 2);
    }

    #[test]
    fn worker_count_does_not_change_bytes() {
        let (store, ranges) = build_store(6, Scheme::Psz3Delta);
        let run = |workers| {
            store.reset_counters();
            let cfg = PipelineConfig {
                workers,
                ..Default::default()
            };
            run_pipeline(&store, &cfg, |i| {
                vec![QoiSpec::with_range(
                    "VTOT",
                    velocity_magnitude(0, 3),
                    1e-4,
                    ranges[i],
                )]
            })
            .unwrap()
            .total_bytes
        };
        assert_eq!(run(1), run(6));
    }
}
