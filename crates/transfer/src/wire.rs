//! Length-prefixed binary framing over arbitrary byte streams.
//!
//! The serving layer (`pqr-serve`) and any future remote-store transport
//! share this codec: a fixed 12-byte header — magic `PQRW`, protocol
//! version, frame kind, body length — followed by the body. The header is
//! validated **before** the body is allocated, and the body length is
//! capped by [`MAX_FRAME_LEN`], so a hostile peer cannot drive a
//! multi-gigabyte preallocation with a forged length prefix (the same
//! policy as [`pqr_util::byteio::ByteReader::check_count`]).
//!
//! Framing is transport-agnostic: anything `io::Read + io::Write`
//! (a `TcpStream`, an in-memory pipe, a fault-injection wrapper) carries
//! frames, which is what lets the serve tests drive the exact production
//! codec through simulated failures.

use pqr_util::error::{PqrError, Result};
use std::io::{Read, Write};

/// Magic prefix of every frame.
pub const FRAME_MAGIC: &[u8; 4] = b"PQRW";
/// Protocol version this build speaks. Peers with a different version are
/// rejected at the first frame.
pub const WIRE_VERSION: u16 = 1;
/// Policy ceiling on a frame body: 64 MiB. Large enough for a full-field
/// value payload on the bench datasets, small enough that a forged length
/// prefix cannot exhaust memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;
/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 12;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version of the sender.
    pub version: u16,
    /// Frame kind discriminant (meaning assigned by the layer above).
    pub kind: u16,
    /// Body length in bytes.
    pub len: u32,
}

/// Encodes a header into its 12 wire bytes.
pub fn encode_header(kind: u16, len: usize) -> [u8; HEADER_LEN] {
    debug_assert!(len <= MAX_FRAME_LEN);
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(FRAME_MAGIC);
    h[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    h[6..8].copy_from_slice(&kind.to_le_bytes());
    h[8..12].copy_from_slice(&(len as u32).to_le_bytes());
    h
}

/// Parses and validates the 12 header bytes: magic, version, and the
/// [`MAX_FRAME_LEN`] body cap. All three fail with
/// [`PqrError::CorruptStream`] before any body allocation.
pub fn decode_header(h: &[u8; HEADER_LEN]) -> Result<FrameHeader> {
    if &h[..4] != FRAME_MAGIC {
        return Err(PqrError::CorruptStream(
            "bad frame magic (want PQRW)".into(),
        ));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != WIRE_VERSION {
        return Err(PqrError::CorruptStream(format!(
            "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    let kind = u16::from_le_bytes([h[6], h[7]]);
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if len as usize > MAX_FRAME_LEN {
        return Err(PqrError::CorruptStream(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN} B policy cap"
        )));
    }
    Ok(FrameHeader { version, kind, len })
}

/// Writes one frame (header + body). Returns the total bytes written so
/// callers can tally wire traffic.
pub fn write_frame(w: &mut impl Write, kind: u16, body: &[u8]) -> Result<usize> {
    if body.len() > MAX_FRAME_LEN {
        return Err(PqrError::InvalidRequest(format!(
            "frame body {} B exceeds the {MAX_FRAME_LEN} B cap",
            body.len()
        )));
    }
    let header = encode_header(kind, body.len());
    w.write_all(&header).map_err(io_err)?;
    w.write_all(body).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(HEADER_LEN + body.len())
}

/// Reads one frame. Returns `(kind, body, wire_bytes)`. The body is
/// allocated only after the header passes [`decode_header`], so truncated,
/// forged, or oversized frames fail cleanly first.
pub fn read_frame(r: &mut impl Read) -> Result<(u16, Vec<u8>, usize)> {
    let mut h = [0u8; HEADER_LEN];
    r.read_exact(&mut h).map_err(io_err)?;
    let header = decode_header(&h)?;
    let mut body = vec![0u8; header.len as usize];
    r.read_exact(&mut body).map_err(io_err)?;
    Ok((header.kind, body, HEADER_LEN + header.len as usize))
}

/// Maps transport failures into the workspace error type. Timeouts keep
/// their identity in the message so callers can distinguish a slow peer
/// (`WouldBlock`/`TimedOut` under socket read timeouts) from a dead one.
pub fn io_err(e: std::io::Error) -> PqrError {
    PqrError::CorruptStream(format!("io: {e} (kind {:?})", e.kind()))
}

/// True when the error wraps a socket-timeout io failure — the handler
/// loop uses this to keep polling an idle-but-alive connection instead of
/// dropping it.
pub fn is_timeout(e: &PqrError) -> bool {
    matches!(
        e,
        PqrError::CorruptStream(m)
            if m.contains("kind WouldBlock") || m.contains("kind TimedOut")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        let wrote = write_frame(&mut buf, 7, b"hello frame").unwrap();
        assert_eq!(wrote, HEADER_LEN + 11);
        let mut cur = std::io::Cursor::new(buf);
        let (kind, body, read) = read_frame(&mut cur).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(body, b"hello frame");
        assert_eq!(read, wrote);
    }

    #[test]
    fn empty_body_frames_are_legal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 4, b"").unwrap();
        let (kind, body, _) = read_frame(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(kind, 4);
        assert!(body.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected_before_body_read() {
        let mut buf = encode_header(1, 4).to_vec();
        buf[..4].copy_from_slice(b"NOPE");
        buf.extend_from_slice(&[0; 4]);
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn oversized_length_prefix_fails_without_allocating() {
        let mut h = encode_header(1, 0);
        h[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_header(&h).unwrap_err();
        assert!(matches!(err, PqrError::CorruptStream(_)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut h = encode_header(1, 0);
        h[4..6].copy_from_slice(&999u16.to_le_bytes());
        assert!(decode_header(&h).is_err());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 2, b"abcdef").unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }
}
