//! Remote store: serialized refactored blocks + fetch accounting.
//!
//! Models the storage side of Fig. 1: refactored data rests in a (remote)
//! store; retrievals fetch fragments and the store tallies the bytes and
//! request counts that the network model will charge for.

use parking_lot::Mutex;
use pqr_progressive::RefactoredDataset;
use pqr_util::error::{PqrError, Result};

/// A remote store holding refactored blocks (archive side of Fig. 1).
pub struct RemoteStore {
    blocks: Vec<RefactoredDataset>,
    counters: Mutex<FetchCounters>,
}

/// Tallied fetch activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchCounters {
    /// Total bytes handed out.
    pub bytes: usize,
    /// Number of fetch requests served.
    pub requests: usize,
}

impl RemoteStore {
    /// Builds a store over refactored blocks.
    pub fn new(blocks: Vec<RefactoredDataset>) -> Self {
        Self {
            blocks,
            counters: Mutex::new(FetchCounters::default()),
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Read-only access to a block's refactored representation.
    pub fn block(&self, i: usize) -> Result<&RefactoredDataset> {
        self.blocks
            .get(i)
            .ok_or_else(|| PqrError::InvalidRequest(format!("block {i} out of range")))
    }

    /// Records a fetch of `bytes` (one request). Called by the pipeline when
    /// a block's retrieval pulls fragments.
    pub fn record_fetch(&self, bytes: usize) {
        let mut c = self.counters.lock();
        c.bytes += bytes;
        c.requests += 1;
    }

    /// Current tallies.
    pub fn counters(&self) -> FetchCounters {
        *self.counters.lock()
    }

    /// Resets tallies (between experiment arms).
    pub fn reset_counters(&self) {
        *self.counters.lock() = FetchCounters::default();
    }

    /// Total archived bytes across blocks.
    pub fn archived_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.total_bytes()).sum()
    }

    /// Raw (uncompressed) bytes across blocks — the Fig. 9 baseline payload.
    pub fn raw_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.raw_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_progressive::field::Dataset;
    use pqr_progressive::refactored::Scheme;

    fn store_with_blocks(n: usize) -> RemoteStore {
        let blocks = (0..n)
            .map(|b| {
                let mut ds = Dataset::new(&[128]);
                ds.add_field(
                    "f",
                    (0..128).map(|i| ((i + b * 7) as f64 * 0.1).sin()).collect(),
                )
                .unwrap();
                ds.refactor_with_bounds(Scheme::PmgardHb, &[1e-1]).unwrap()
            })
            .collect();
        RemoteStore::new(blocks)
    }

    #[test]
    fn block_access_and_bounds() {
        let store = store_with_blocks(3);
        assert_eq!(store.num_blocks(), 3);
        assert!(store.block(2).is_ok());
        assert!(store.block(3).is_err());
    }

    #[test]
    fn counters_accumulate_thread_safely() {
        let store = store_with_blocks(1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = &store;
                s.spawn(move || {
                    for _ in 0..100 {
                        store.record_fetch(10);
                    }
                });
            }
        });
        let c = store.counters();
        assert_eq!(c.bytes, 8000);
        assert_eq!(c.requests, 800);
        store.reset_counters();
        assert_eq!(store.counters(), FetchCounters::default());
    }

    #[test]
    fn size_accounting() {
        let store = store_with_blocks(4);
        assert_eq!(store.raw_bytes(), 4 * 128 * 8);
        assert!(store.archived_bytes() > 0);
    }
}
