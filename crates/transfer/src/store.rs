//! Remote store: refactored blocks served fragment-by-fragment + fetch
//! accounting.
//!
//! Models the storage side of Fig. 1: refactored data rests in a (remote)
//! store; retrievals open a [`FragmentSource`] per block
//! ([`RemoteStore::block_source`]) and pull exactly the fragments the QoI
//! engine asks for. The store tallies the bytes and request counts the
//! network model will charge for — and, when a fragment cache is attached
//! ([`RemoteStore::with_cache`]), distinguishes cache hits (served locally,
//! free on the wire) from network fetches.

use pqr_progressive::fragstore::{
    FragmentCache, FragmentId, FragmentSource, Manifest, SourceStats,
};
use pqr_progressive::RefactoredDataset;
use pqr_util::error::{PqrError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A remote store holding refactored blocks (archive side of Fig. 1).
/// Stores are shared behind an `Arc` — block sources own a handle, so
/// retrieval engines on them carry no borrows and run from any thread.
pub struct RemoteStore {
    blocks: Vec<RefactoredDataset>,
    counters: AtomicFetchCounters,
    cache: Option<Arc<FragmentCache>>,
}

/// Lock-free tally cells behind [`FetchCounters`]: concurrent block
/// retrievals bump these with atomic adds, so no update is ever lost and
/// no fetch serializes on a counter lock.
#[derive(Debug, Default)]
struct AtomicFetchCounters {
    bytes: AtomicUsize,
    requests: AtomicUsize,
    fragments: AtomicUsize,
    hits: AtomicUsize,
    hit_bytes: AtomicUsize,
}

impl AtomicFetchCounters {
    fn snapshot(&self) -> FetchCounters {
        FetchCounters {
            bytes: self.bytes.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            hit_bytes: self.hit_bytes.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.requests.store(0, Ordering::Relaxed);
        self.fragments.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.hit_bytes.store(0, Ordering::Relaxed);
    }
}

/// Tallied fetch activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchCounters {
    /// Bytes moved over the (simulated) network.
    pub bytes: usize,
    /// Network round-trips served by the store: one per single-fragment
    /// fetch, one per [`FragmentSource::read_many`] batch — batched
    /// retrieval is observable as `requests < fragments`.
    pub requests: usize,
    /// Fragments moved over the network (across all round-trips).
    pub fragments: usize,
    /// Fetches served from the local fragment cache instead of the network.
    pub hits: usize,
    /// Bytes those cache hits would otherwise have moved.
    pub hit_bytes: usize,
}

impl FetchCounters {
    /// Fetches served from the cache without touching the network.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Fragment fetches that went over the network.
    pub fn misses(&self) -> usize {
        self.fragments
    }

    /// Network round-trips (single fetches + whole batches).
    pub fn round_trips(&self) -> usize {
        self.requests
    }
}

impl RemoteStore {
    /// Builds a store over refactored blocks.
    pub fn new(blocks: Vec<RefactoredDataset>) -> Self {
        Self {
            blocks,
            counters: AtomicFetchCounters::default(),
            cache: None,
        }
    }

    /// Attaches a retrieval-side LRU fragment cache with the given byte
    /// budget: repeated fetches of the same fragment are served locally and
    /// tallied as hits instead of network requests.
    pub fn with_cache(mut self, cap_bytes: usize) -> Self {
        self.cache = Some(Arc::new(FragmentCache::new(cap_bytes)));
        self
    }

    /// The attached fragment cache, if any.
    pub fn cache(&self) -> Option<&Arc<FragmentCache>> {
        self.cache.as_ref()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Read-only access to a block's refactored representation.
    pub fn block(&self, i: usize) -> Result<&RefactoredDataset> {
        self.blocks
            .get(i)
            .ok_or_else(|| PqrError::InvalidRequest(format!("block {i} out of range")))
    }

    /// Opens the fragment source for block `i` — the **owned** handle a
    /// retrieval engine refines through (it keeps the store alive via its
    /// `Arc`). Fetches count against the store's network tallies; the
    /// attached cache (if any) intercepts repeats.
    pub fn block_source(self: &Arc<Self>, i: usize) -> Result<RemoteBlockSource> {
        if i >= self.blocks.len() {
            return Err(PqrError::InvalidRequest(format!("block {i} out of range")));
        }
        Ok(RemoteBlockSource {
            store: Arc::clone(self),
            block: i,
        })
    }

    /// Records a network fetch of `bytes` (one request, one fragment).
    pub fn record_fetch(&self, bytes: usize) {
        self.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.fragments.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batched fetch: `fragments` fragments totalling `bytes`
    /// served in **one** network round-trip.
    pub fn record_batch(&self, bytes: usize, fragments: usize) {
        self.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fragments
            .fetch_add(fragments, Ordering::Relaxed);
    }

    /// Records a fetch served by the local cache (`bytes` stayed off the
    /// wire).
    pub fn record_hit(&self, bytes: usize) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        self.counters.hit_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current tallies (an atomic snapshot of the lock-free cells).
    pub fn counters(&self) -> FetchCounters {
        self.counters.snapshot()
    }

    /// Resets tallies (between experiment arms).
    pub fn reset_counters(&self) {
        self.counters.reset();
    }

    /// Total archived bytes across blocks.
    pub fn archived_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.total_bytes()).sum()
    }

    /// Raw (uncompressed) bytes across blocks — the Fig. 9 baseline payload.
    pub fn raw_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.raw_bytes()).sum()
    }
}

/// The [`FragmentSource`] view of one stored block: every fetch either hits
/// the store's cache (tallied as a hit) or moves bytes over the simulated
/// network (tallied as a request). Retrieval engines refine through this —
/// the same code path as local and file-backed archives. The view owns an
/// `Arc` to its store, so it is `'static` and crosses threads freely.
pub struct RemoteBlockSource {
    store: Arc<RemoteStore>,
    block: usize,
}

impl RemoteBlockSource {
    /// The block index this source serves.
    pub fn block_index(&self) -> usize {
        self.block
    }
}

impl FragmentSource for RemoteBlockSource {
    fn manifest(&self) -> Result<Manifest> {
        self.store.blocks[self.block].manifest()
    }

    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        let key = (self.block as u64, id.field, id.index);
        if let Some(cache) = &self.store.cache {
            if let Some(hit) = cache.get(&key) {
                self.store.record_hit(hit.len());
                return Ok(hit);
            }
        }
        let payload = self.store.blocks[self.block].fetch(id)?;
        self.store.record_fetch(payload.len());
        if let Some(cache) = &self.store.cache {
            cache.insert(key, Arc::clone(&payload));
        }
        Ok(payload)
    }

    fn read_many(&self, ids: &[FragmentId]) -> Result<Vec<Arc<Vec<u8>>>> {
        // the whole batch rides one round-trip: cache hits are peeled off
        // locally, every miss is served from the block and charged as a
        // single multi-fragment request
        let mut out: Vec<Option<Arc<Vec<u8>>>> = vec![None; ids.len()];
        let mut miss_bytes = 0usize;
        let mut misses = 0usize;
        for (k, &id) in ids.iter().enumerate() {
            let key = (self.block as u64, id.field, id.index);
            if let Some(cache) = &self.store.cache {
                if let Some(hit) = cache.get(&key) {
                    self.store.record_hit(hit.len());
                    out[k] = Some(hit);
                    continue;
                }
            }
            let payload = self.store.blocks[self.block].fetch(id)?;
            miss_bytes += payload.len();
            misses += 1;
            if let Some(cache) = &self.store.cache {
                cache.insert(key, Arc::clone(&payload));
            }
            out[k] = Some(payload);
        }
        if misses > 0 {
            self.store.record_batch(miss_bytes, misses);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("every id served"))
            .collect())
    }

    fn stats(&self) -> SourceStats {
        // store-wide view (blocks share the store's tallies)
        let c = self.store.counters();
        SourceStats {
            fetches: (c.fragments + c.hits) as u64,
            fetched_bytes: (c.bytes + c.hit_bytes) as u64,
            cache_hits: c.hits as u64,
            cache_misses: c.fragments as u64,
            read_ops: c.requests as u64,
            // overlap is an executor-side tally (see SourceStats docs)
            overlap_saved_ms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
    use pqr_progressive::field::Dataset;
    use pqr_progressive::refactored::Scheme;
    use pqr_qoi::QoiExpr;

    fn store_with_blocks(n: usize) -> Arc<RemoteStore> {
        let blocks = (0..n)
            .map(|b| {
                let mut ds = Dataset::new(&[128]);
                ds.add_field(
                    "f",
                    (0..128).map(|i| ((i + b * 7) as f64 * 0.1).sin()).collect(),
                )
                .unwrap();
                ds.refactor_with_bounds(Scheme::PmgardHb, &[1e-1]).unwrap()
            })
            .collect();
        Arc::new(RemoteStore::new(blocks))
    }

    #[test]
    fn block_access_and_bounds() {
        let store = store_with_blocks(3);
        assert_eq!(store.num_blocks(), 3);
        assert!(store.block(2).is_ok());
        assert!(store.block(3).is_err());
        assert!(store.block_source(2).is_ok());
        assert!(store.block_source(3).is_err());
    }

    #[test]
    fn counters_accumulate_thread_safely() {
        let store = store_with_blocks(1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = &store;
                s.spawn(move || {
                    for _ in 0..100 {
                        store.record_fetch(10);
                    }
                });
            }
        });
        let c = store.counters();
        assert_eq!(c.bytes, 8000);
        assert_eq!(c.requests, 800);
        assert_eq!(c.misses(), 800);
        assert_eq!(c.hits(), 0);
        store.reset_counters();
        assert_eq!(store.counters(), FetchCounters::default());
    }

    #[test]
    fn size_accounting() {
        let store = store_with_blocks(4);
        assert_eq!(store.raw_bytes(), 4 * 128 * 8);
        assert!(store.archived_bytes() > 0);
    }

    #[test]
    fn uncached_fetches_all_go_to_the_network() {
        let store = store_with_blocks(2);
        let src = store.block_source(0).unwrap();
        let mut engine =
            RetrievalEngine::from_source(Arc::new(src), EngineConfig::default()).unwrap();
        engine
            .retrieve(&[QoiSpec::absolute("f", QoiExpr::var(0), 1e-4)])
            .unwrap();
        let c = store.counters();
        assert!(c.requests > 0);
        assert!(c.bytes > 0);
        assert_eq!(c.hits(), 0);
        // the engine's byte accounting equals the store's network bytes
        // (no mask attached, so every counted byte went through the wire)
        assert_eq!(engine.total_fetched(), c.bytes);
    }

    #[test]
    fn cached_store_serves_repeats_locally() {
        let store = {
            let mut blocks = Vec::new();
            let mut ds = Dataset::new(&[128]);
            ds.add_field("f", (0..128).map(|i| (i as f64 * 0.1).sin()).collect())
                .unwrap();
            blocks.push(ds.refactor_with_bounds(Scheme::PmgardHb, &[1e-1]).unwrap());
            Arc::new(RemoteStore::new(blocks).with_cache(1 << 20))
        };
        let spec = QoiSpec::absolute("f", QoiExpr::var(0), 1e-4);

        let src = Arc::new(store.block_source(0).unwrap());
        let mut e1 = RetrievalEngine::from_source(src.clone(), EngineConfig::default()).unwrap();
        e1.retrieve(std::slice::from_ref(&spec)).unwrap();
        let after_first = store.counters();
        assert_eq!(after_first.hits(), 0, "cold cache cannot hit");

        // a second session over the same block re-fetches the same
        // fragments: all hits, zero new network bytes
        let mut e2 = RetrievalEngine::from_source(src, EngineConfig::default()).unwrap();
        e2.retrieve(std::slice::from_ref(&spec)).unwrap();
        let after_second = store.counters();
        assert_eq!(after_second.bytes, after_first.bytes);
        assert_eq!(after_second.misses(), after_first.misses());
        assert!(after_second.hits() > 0);
        assert_eq!(e1.total_fetched(), e2.total_fetched());
        assert_eq!(e1.reconstruction(0), e2.reconstruction(0));
    }
}
