//! Property-based tests for the multilevel transform and the progressive
//! reader: exact invertibility on arbitrary shapes, and the guaranteed
//! bound dominating the real reconstruction error at arbitrary fetch depth.

use pqr_mgard::transform::{decompose, decompose_with_workers, recompose, recompose_with_workers};
use pqr_mgard::{Basis, MgardRefactorer};
use proptest::prelude::*;

fn arb_basis() -> impl Strategy<Value = Basis> {
    prop_oneof![Just(Basis::Hierarchical), Just(Basis::Orthogonal)]
}

fn data_for(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64 - 0.5) * 2.0 + ((i as f64) * 0.05).sin() * 3.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decompose_recompose_identity_any_shape(
        d0 in 1usize..40,
        d1 in 1usize..16,
        basis in arb_basis(),
        seed in 0u64..10_000,
    ) {
        let dims = [d0, d1];
        let n = d0 * d1;
        let orig = data_for(n, seed);
        let mut v = orig.clone();
        decompose(&mut v, &dims, basis);
        recompose(&mut v, &dims, basis);
        for (a, b) in orig.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_transform_bit_identical_any_shape(
        rank in 1usize..=3,
        d0 in 1usize..40,
        d1 in 1usize..24,
        d2 in 1usize..12,
        basis in arb_basis(),
        workers in 2usize..=4,
        seed in 0u64..10_000,
    ) {
        // the pencil-parallel passes must be *byte*-identical to the scalar
        // serial oracle on every shape, not merely close (the suite runs
        // under the PQR_THREADS={1,4} CI matrix; `workers` here exercises
        // the explicit fan-out independently of the env)
        let dims = match rank {
            1 => vec![d0 * d1],
            2 => vec![d0, d1],
            _ => vec![d0, d1, d2],
        };
        let n: usize = dims.iter().product();
        let orig = data_for(n, seed);
        let mut serial = orig.clone();
        decompose(&mut serial, &dims, basis);
        let mut par = orig.clone();
        decompose_with_workers(&mut par, &dims, basis, workers);
        prop_assert_eq!(&serial, &par);
        let mut rec_serial = serial.clone();
        recompose(&mut rec_serial, &dims, basis);
        let mut rec_par = serial.clone();
        recompose_with_workers(&mut rec_par, &dims, basis, workers);
        prop_assert_eq!(&rec_serial, &rec_par);
    }

    #[test]
    fn guaranteed_bound_dominates_real_error(
        n in 2usize..600,
        basis in arb_basis(),
        seed in 0u64..10_000,
        eb_exp in -10..-1i32,
    ) {
        let data = data_for(n, seed);
        let stream = MgardRefactorer::new(basis).refactor(&data, &[n]).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(10f64.powi(eb_exp)).unwrap();
        let recon = reader.reconstruct();
        let bound = reader.guaranteed_bound();
        for (i, (a, b)) in data.iter().zip(&recon).enumerate() {
            prop_assert!(
                (a - b).abs() <= bound,
                "idx {i}: |{a} - {b}| = {} > bound {bound}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn partial_plane_fetch_bound_holds(
        n in 2usize..400,
        basis in arb_basis(),
        seed in 0u64..10_000,
        planes in 1usize..40,
    ) {
        // fetch an arbitrary plane budget instead of a target bound
        let data = data_for(n, seed);
        let stream = MgardRefactorer::new(basis).refactor(&data, &[n]).unwrap();
        let mut reader = stream.reader();
        reader.fetch_planes(planes).unwrap();
        let recon = reader.reconstruct();
        let bound = reader.guaranteed_bound();
        for (a, b) in data.iter().zip(&recon) {
            prop_assert!((a - b).abs() <= bound);
        }
    }

    #[test]
    fn serialization_roundtrip_any_input(
        n in 1usize..300,
        basis in arb_basis(),
        seed in 0u64..10_000,
    ) {
        let data = data_for(n, seed);
        let stream = MgardRefactorer::new(basis).refactor(&data, &[n]).unwrap();
        let back = pqr_mgard::MgardStream::from_bytes(&stream.to_bytes()).unwrap();
        let mut r1 = stream.reader();
        let mut r2 = back.reader();
        r1.refine_to(1e-6).unwrap();
        r2.refine_to(1e-6).unwrap();
        prop_assert_eq!(r1.total_fetched(), r2.total_fetched());
        prop_assert_eq!(r1.reconstruct(), r2.reconstruct());
    }

    #[test]
    fn monotone_bound_with_more_planes(
        n in 16usize..400,
        seed in 0u64..10_000,
    ) {
        let data = data_for(n, seed);
        let stream = MgardRefactorer::default().refactor(&data, &[n]).unwrap();
        let mut reader = stream.reader();
        let mut last = reader.guaranteed_bound();
        for _ in 0..30 {
            reader.fetch_planes(1).unwrap();
            let b = reader.guaranteed_bound();
            prop_assert!(b <= last * (1.0 + 1e-12));
            last = b;
        }
    }
}

/// Shapes whose finest passes exceed the parallel-dispatch threshold, so the
/// slab/halo code path (not just the serial fallback) is what's compared.
#[test]
fn parallel_transform_bit_identical_large_shapes() {
    for dims in [vec![16_385usize], vec![129, 127], vec![33, 31, 35]] {
        let n: usize = dims.iter().product();
        let orig = data_for(n, 42);
        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let mut serial = orig.clone();
            decompose(&mut serial, &dims, basis);
            for workers in [2usize, 4] {
                let mut par = orig.clone();
                decompose_with_workers(&mut par, &dims, basis, workers);
                assert_eq!(serial, par, "decompose {dims:?} {basis:?} w={workers}");
            }
            let mut rec_serial = serial.clone();
            recompose(&mut rec_serial, &dims, basis);
            for workers in [2usize, 4] {
                let mut rec_par = serial.clone();
                recompose_with_workers(&mut rec_par, &dims, basis, workers);
                assert_eq!(
                    rec_serial, rec_par,
                    "recompose {dims:?} {basis:?} w={workers}"
                );
            }
        }
    }
}
