//! Property-based tests for the multilevel transform and the progressive
//! reader: exact invertibility on arbitrary shapes, and the guaranteed
//! bound dominating the real reconstruction error at arbitrary fetch depth.

use pqr_mgard::transform::{decompose, recompose};
use pqr_mgard::{Basis, MgardRefactorer};
use proptest::prelude::*;

fn arb_basis() -> impl Strategy<Value = Basis> {
    prop_oneof![Just(Basis::Hierarchical), Just(Basis::Orthogonal)]
}

fn data_for(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64 - 0.5) * 2.0 + ((i as f64) * 0.05).sin() * 3.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decompose_recompose_identity_any_shape(
        d0 in 1usize..40,
        d1 in 1usize..16,
        basis in arb_basis(),
        seed in 0u64..10_000,
    ) {
        let dims = [d0, d1];
        let n = d0 * d1;
        let orig = data_for(n, seed);
        let mut v = orig.clone();
        decompose(&mut v, &dims, basis);
        recompose(&mut v, &dims, basis);
        for (a, b) in orig.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn guaranteed_bound_dominates_real_error(
        n in 2usize..600,
        basis in arb_basis(),
        seed in 0u64..10_000,
        eb_exp in -10..-1i32,
    ) {
        let data = data_for(n, seed);
        let stream = MgardRefactorer::new(basis).refactor(&data, &[n]).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(10f64.powi(eb_exp)).unwrap();
        let recon = reader.reconstruct();
        let bound = reader.guaranteed_bound();
        for (i, (a, b)) in data.iter().zip(&recon).enumerate() {
            prop_assert!(
                (a - b).abs() <= bound,
                "idx {i}: |{a} - {b}| = {} > bound {bound}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn partial_plane_fetch_bound_holds(
        n in 2usize..400,
        basis in arb_basis(),
        seed in 0u64..10_000,
        planes in 1usize..40,
    ) {
        // fetch an arbitrary plane budget instead of a target bound
        let data = data_for(n, seed);
        let stream = MgardRefactorer::new(basis).refactor(&data, &[n]).unwrap();
        let mut reader = stream.reader();
        reader.fetch_planes(planes).unwrap();
        let recon = reader.reconstruct();
        let bound = reader.guaranteed_bound();
        for (a, b) in data.iter().zip(&recon) {
            prop_assert!((a - b).abs() <= bound);
        }
    }

    #[test]
    fn serialization_roundtrip_any_input(
        n in 1usize..300,
        basis in arb_basis(),
        seed in 0u64..10_000,
    ) {
        let data = data_for(n, seed);
        let stream = MgardRefactorer::new(basis).refactor(&data, &[n]).unwrap();
        let back = pqr_mgard::MgardStream::from_bytes(&stream.to_bytes()).unwrap();
        let mut r1 = stream.reader();
        let mut r2 = back.reader();
        r1.refine_to(1e-6).unwrap();
        r2.refine_to(1e-6).unwrap();
        prop_assert_eq!(r1.total_fetched(), r2.total_fetched());
        prop_assert_eq!(r1.reconstruct(), r2.reconstruct());
    }

    #[test]
    fn monotone_bound_with_more_planes(
        n in 16usize..400,
        seed in 0u64..10_000,
    ) {
        let data = data_for(n, seed);
        let stream = MgardRefactorer::default().refactor(&data, &[n]).unwrap();
        let mut reader = stream.reader();
        let mut last = reader.guaranteed_bound();
        for _ in 0..30 {
            reader.fetch_planes(1).unwrap();
            let b = reader.guaranteed_bound();
            prop_assert!(b <= last * (1.0 + 1e-12));
            last = b;
        }
    }
}
