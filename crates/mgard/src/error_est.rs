//! Reconstruction L∞ error models for the two bases (§V-B / Fig. 3).
//!
//! Both models consume, for every level `l` (stride `s_l = 2^l`, finest
//! first), the current per-coefficient truncation bound `e_l` from the
//! bitplane decoder and return a **guaranteed** bound on the L∞ error of the
//! recomposed data.
//!
//! ## HB (hierarchical basis)
//!
//! Recomposition applies, per level and per axis pass, a convex
//! interpolation (amplification ≤ 1) plus the coefficient itself; chaining
//! the `d` axis passes of one level adds at most `d·e_l` to the running
//! error. The guaranteed bound is the plain weighted sum `Σ_l d·e_l` — the
//! "summation of the maximal error bounds across all levels" the paper
//! credits PMGARD-HB with. It tracks the real error closely.
//!
//! ## OB (orthogonal basis)
//!
//! Recomposition must *recompute the L2 correction from the truncated
//! coefficients*; the mass solve amplifies a coefficient error `e_l` by up
//! to `κ = 3` (`‖M⁻¹‖∞·overlap = 6·(2/4)`, see `projection`), so one
//! axis pass adds `(1+κ)·e_l = 4·e_l` and one level adds `4·d·e_l` —
//! that is the *honest* propagation bound. The **guaranteed** OB model, like
//! MGARD's published multilevel L∞ constants, additionally compounds κ for
//! every level a coarse perturbation traverses on its way to the finest
//! grid:
//!
//! ```text
//!   bound_OB = Σ_l  (1+κ) · d · e_l · κ^l        (κ = 3, l = 0 finest)
//! ```
//!
//! It dominates the honest bound level-by-level (`(1+κ)·d·e_l·κ^l ≥
//! (1+κ)·d·e_l`), so it is a true guarantee — but the compounding makes it
//! increasingly pessimistic for deep hierarchies while the *actual* error
//! stays near the HB sum (corrections largely cancel). That estimated-vs-real
//! gap is exactly the over-retrieval behaviour of Fig. 3 that motivates
//! PMGARD-HB.

use crate::transform::Basis;

/// Per-axis-pass amplification of the OB correction recomputation
/// (`‖M⁻¹‖∞ ≤ 6` times the `2/4` load overlap).
pub const KAPPA: f64 = 3.0;

/// One axis pass of OB recomposition adds `(1 + κ)·e` = `4·e`.
pub const OB_PASS: f64 = 1.0 + KAPPA;

/// Effective dimensionality: axes with extent > 1.
pub fn effective_dims(dims: &[usize]) -> usize {
    dims.iter().filter(|&&d| d > 1).count().max(1)
}

/// Guaranteed L∞ reconstruction bound from per-level coefficient bounds.
///
/// `level_errors[l]` is the truncation bound of the level with stride `2^l`
/// (finest first — the order of `hierarchy::level_strides`).
pub fn recon_bound(basis: Basis, dims: &[usize], level_errors: &[f64]) -> f64 {
    level_errors
        .iter()
        .enumerate()
        .map(|(l, &e)| level_weight(basis, dims, l) * e)
        .sum()
}

/// The marginal contribution of level `l`'s coefficient error to the bound —
/// also used by the greedy plane scheduler to pick which level to refine.
pub fn level_weight(basis: Basis, dims: &[usize], level_index: usize) -> f64 {
    let d = effective_dims(dims) as f64;
    match basis {
        Basis::Hierarchical => d,
        Basis::Orthogonal => OB_PASS * d * KAPPA.powi(level_index as i32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hb_bound_is_weighted_sum() {
        let b = recon_bound(Basis::Hierarchical, &[100], &[1e-3, 1e-4, 1e-5]);
        assert!((b - (1e-3 + 1e-4 + 1e-5)).abs() < 1e-18);
        let b2 = recon_bound(Basis::Hierarchical, &[10, 10], &[1e-3]);
        assert!((b2 - 2e-3).abs() < 1e-18);
    }

    #[test]
    fn ob_bound_compounds_kappa() {
        let b = recon_bound(Basis::Orthogonal, &[100], &[1e-3, 1e-3]);
        let expect = 4e-3 + 4e-3 * 3.0;
        assert!((b - expect).abs() < 1e-15);
    }

    #[test]
    fn ob_dominates_honest_propagation_per_level() {
        // honest per-level bound is (1+κ)·d·e; the model must never dip below
        for l in 0..20 {
            for dims in [vec![100usize], vec![30, 30], vec![8, 8, 8]] {
                let d = effective_dims(&dims) as f64;
                let w = level_weight(Basis::Orthogonal, &dims, l);
                assert!(w >= OB_PASS * d - 1e-12, "level {l} dims {dims:?}: {w}");
            }
        }
    }

    #[test]
    fn ob_always_looser_than_hb() {
        let errs = [1e-2, 5e-3, 1e-3, 1e-4];
        for dims in [vec![100usize], vec![30, 30], vec![8, 8, 8]] {
            let hb = recon_bound(Basis::Hierarchical, &dims, &errs);
            let ob = recon_bound(Basis::Orthogonal, &dims, &errs);
            assert!(ob > hb, "dims {dims:?}: OB {ob} !> HB {hb}");
        }
    }

    #[test]
    fn coarser_levels_weigh_more_in_ob() {
        let w0 = level_weight(Basis::Orthogonal, &[64], 0);
        let w5 = level_weight(Basis::Orthogonal, &[64], 5);
        assert!(w5 > w0 * 5.0);
        // HB weighs all levels equally
        assert_eq!(
            level_weight(Basis::Hierarchical, &[64], 0),
            level_weight(Basis::Hierarchical, &[64], 5)
        );
    }

    #[test]
    fn effective_dims_ignores_singletons() {
        assert_eq!(effective_dims(&[100, 1, 1]), 1);
        assert_eq!(effective_dims(&[4, 4, 4]), 3);
        assert_eq!(effective_dims(&[1]), 1);
    }

    #[test]
    fn zero_errors_zero_bound() {
        assert_eq!(recon_bound(Basis::Orthogonal, &[50, 50], &[0.0, 0.0]), 0.0);
    }
}
