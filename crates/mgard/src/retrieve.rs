//! Progressive retrieval: greedy bitplane fetching under an L∞ target.
//!
//! The reader tracks, per level, how many planes it has fetched and the
//! resulting coefficient truncation bound; the guaranteed reconstruction
//! bound is the basis-specific model of [`crate::error_est`]. A refinement
//! request fetches one plane at a time from the level whose *current error
//! contribution* is largest — the schedule that decreases the modeled bound
//! fastest per fetched plane (coarse levels hold few coefficients, so their
//! planes are cheap and fetched deep; exactly how PMGARD behaves).

use crate::bitplane::LevelDecoder;
use crate::error_est::{level_weight, recon_bound};
use crate::hierarchy::level_strides;
use crate::refactor::{MgardMeta, MgardStream};
use crate::transform::{recompose_with_workers, scatter_level, Basis};
use pqr_util::error::Result;

/// Push-based progressive decoder over [`MgardMeta`].
///
/// A cursor holds only the stream's *metadata* plus decode state — it never
/// sees where the plane payloads live. The owner asks [`MgardCursor::
/// next_plane`] which `(level, plane)` the greedy schedule wants, fetches
/// those bytes from wherever the stream is stored (memory, a file range, a
/// remote store), and pushes them in with [`MgardCursor::push_plane`]. The
/// borrowing [`MgardReader`] and the fragment-addressed sources in
/// `pqr-progressive` both drive the same cursor, so the refinement schedule
/// and the error model cannot drift between local and remote paths.
#[derive(Debug, Clone)]
pub struct MgardCursor {
    meta: MgardMeta,
    decoders: Vec<LevelDecoder>,
}

impl MgardCursor {
    /// Creates a cursor at zero consumed planes.
    pub fn new(meta: MgardMeta) -> Self {
        let decoders = meta
            .levels()
            .iter()
            .map(|l| LevelDecoder::new(l.exponent, l.count))
            .collect();
        Self { meta, decoders }
    }

    /// The metadata this cursor decodes against.
    pub fn meta(&self) -> &MgardMeta {
        &self.meta
    }

    /// The guaranteed L∞ bound of [`MgardCursor::reconstruct`] at the
    /// current state (the basis-specific model — what the QoI machinery
    /// consumes as the primary-data ε).
    pub fn guaranteed_bound(&self) -> f64 {
        let errs: Vec<f64> = self.decoders.iter().map(|d| d.error_bound()).collect();
        recon_bound(self.meta.basis(), self.meta.dims(), &errs)
    }

    /// True when every plane of every level has been consumed.
    pub fn fully_fetched(&self) -> bool {
        self.decoders
            .iter()
            .zip(self.meta.levels())
            .all(|(d, l)| d.planes_read() >= l.num_planes)
    }

    /// Planes consumed so far, per level — the resumable progress marker.
    pub fn planes_read(&self) -> Vec<u32> {
        self.decoders.iter().map(|d| d.planes_read()).collect()
    }

    /// The `(level, plane_index)` the greedy schedule wants next — the
    /// level whose next plane removes the most modeled error — or `None`
    /// when every level is exhausted. Pure planning: the cursor state only
    /// advances when the owner pushes the plane's bytes.
    pub fn next_plane(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, f64)> = None;
        for (l, d) in self.decoders.iter().enumerate() {
            if d.planes_read() >= self.meta.levels()[l].num_planes {
                continue;
            }
            let contribution =
                level_weight(self.meta.basis(), self.meta.dims(), l) * d.error_bound();
            match best {
                Some((_, c)) if c >= contribution => {}
                _ => best = Some((l, contribution)),
            }
        }
        best.map(|(l, _)| (l, self.decoders[l].planes_read() as usize))
    }

    /// The `(level, plane)` pushes the greedy schedule will perform, in
    /// order, to bring [`MgardCursor::guaranteed_bound`] to at most `eb` —
    /// computed without consuming anything. The bound model is a function
    /// of per-level consumed-plane counts only (`truncation_error` over the
    /// metadata exponents), so the prediction matches the fetch-and-push
    /// path exactly; batched retrieval plans its fragment schedule from
    /// this before a single payload byte moves.
    pub fn plan_to_bound(&self, eb: f64) -> Vec<(usize, usize)> {
        self.plan_to_bound_with_bounds(eb)
            .into_iter()
            .map(|(l, p, _)| (l, p))
            .collect()
    }

    /// [`MgardCursor::plan_to_bound`] annotated with the guaranteed bound
    /// the model reaches *after* each push. With `eb = 0.0` this is the
    /// full remaining refinement front down to the representation floor —
    /// what a plan-front cache stores once and cuts prefixes from, since
    /// the walk is the same greedy schedule for every target.
    pub fn plan_to_bound_with_bounds(&self, eb: f64) -> Vec<(usize, usize, f64)> {
        use crate::bitplane::truncation_error;
        let basis = self.meta.basis();
        let dims = self.meta.dims();
        let levels = self.meta.levels();
        let mut planes: Vec<u32> = self.planes_read();
        let mut errs: Vec<f64> = levels
            .iter()
            .zip(&planes)
            .map(|(l, &p)| truncation_error(l.exponent, p))
            .collect();
        let mut out = Vec::new();
        while recon_bound(basis, dims, &errs) > eb {
            // mirror `next_plane`: the level whose next plane removes the
            // most modeled error
            let mut best: Option<(usize, f64)> = None;
            for (l, lm) in levels.iter().enumerate() {
                if planes[l] >= lm.num_planes {
                    continue;
                }
                let contribution = level_weight(basis, dims, l) * errs[l];
                match best {
                    Some((_, c)) if c >= contribution => {}
                    _ => best = Some((l, contribution)),
                }
            }
            let Some((l, _)) = best else {
                break; // exhausted
            };
            let plane = planes[l] as usize;
            planes[l] += 1;
            errs[l] = truncation_error(levels[l].exponent, planes[l]);
            out.push((l, plane, recon_bound(basis, dims, &errs)));
        }
        out
    }

    /// Consumes the next plane of `level` (planes must arrive in MSB-first
    /// order per level; the plane index is implicit in the decode state).
    pub fn push_plane(&mut self, level: usize, bytes: &[u8]) -> Result<()> {
        let Some(lm) = self.meta.levels().get(level) else {
            return Err(pqr_util::error::PqrError::InvalidRequest(format!(
                "level {level} out of range ({} levels)",
                self.meta.num_levels()
            )));
        };
        if self.decoders[level].planes_read() >= lm.num_planes {
            return Err(pqr_util::error::PqrError::InvalidRequest(format!(
                "level {level} already fully fetched"
            )));
        }
        self.decoders[level].push_plane(bytes)
    }

    /// Recomposes the data representation from the planes consumed so far.
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut v = Vec::new();
        self.reconstruct_into(&mut v, 1);
        v
    }

    /// [`MgardCursor::reconstruct`] into a caller-provided (pooled) buffer,
    /// with the recompose passes fanned across `workers` threads — the
    /// result is bit-identical at every worker count (see
    /// [`crate::transform::recompose_with_workers`]). Reusing `out` across
    /// refinement rounds removes the per-round full-field allocation.
    /// Returns the number of recompose passes executed.
    pub fn reconstruct_into(&self, out: &mut Vec<f64>, workers: usize) -> u64 {
        let dims = self.meta.dims();
        let n: usize = dims.iter().product();
        out.clear();
        out.resize(n, 0.0);
        if n == 0 {
            return 0;
        }
        out[0] = self.meta.root();
        for (l, &s) in level_strides(dims).iter().enumerate() {
            scatter_level(out, dims, s, &self.decoders[l].coefficients());
        }
        recompose_with_workers(out, dims, self.meta.basis(), workers)
    }

    /// Progression in **resolution** (the other PMGARD axis, §II): drops the
    /// `drop_finest` finest levels entirely and reconstructs on the coarse
    /// subgrid of stride `2^drop_finest` (coordinates that are multiples of
    /// the stride). Returns `(coarse_data, coarse_dims)`.
    ///
    /// The returned values are the multilevel reconstruction restricted to
    /// the coarse grid — downsampling in the hierarchy, not in index space —
    /// so a precision-progressive reader can later upgrade the same bytes
    /// to full resolution (the PMGARD "both progressions" property).
    pub fn reconstruct_at_resolution(&self, drop_finest: usize) -> (Vec<f64>, Vec<usize>) {
        let mut out = Vec::new();
        let coarse_dims = self.reconstruct_at_resolution_into(drop_finest, &mut out, 1);
        (out, coarse_dims)
    }

    /// [`MgardCursor::reconstruct_at_resolution`] into a caller-provided
    /// buffer with `workers`-way recompose. The multilevel hierarchy is
    /// self-similar, so the coarse view is recomposed **directly on the
    /// coarse grid**: the kept levels' strides scale down by `2^drop`, which
    /// preserves every per-axis grid count (`ceil(d/2^k) = (d-1)/2^k + 1`).
    /// No full-resolution scratch buffer and no sampling pass — and the
    /// values are bit-identical to recomposing in full and sampling the
    /// subgrid, because a dropped level's interpolation pass writes only
    /// non-subgrid points and its correction solves an all-zero load (an
    /// exact no-op on the coarse nodes). Returns the coarse dims.
    pub fn reconstruct_at_resolution_into(
        &self,
        drop_finest: usize,
        out: &mut Vec<f64>,
        workers: usize,
    ) -> Vec<usize> {
        let dims = self.meta.dims();
        let n: usize = dims.iter().product();
        if n == 0 {
            out.clear();
            return dims.to_vec();
        }
        let levels = level_strides(dims);
        let drop = drop_finest.min(levels.len());
        let stride = 1usize << drop;
        let coarse_dims: Vec<usize> = dims.iter().map(|&d| d.div_ceil(stride)).collect();
        out.clear();
        out.resize(coarse_dims.iter().product(), 0.0);
        out[0] = self.meta.root();
        for (l, &s) in levels.iter().enumerate().skip(drop) {
            scatter_level(
                out,
                &coarse_dims,
                s >> drop,
                &self.decoders[l].coefficients(),
            );
        }
        recompose_with_workers(out, &coarse_dims, self.meta.basis(), workers);
        coarse_dims
    }

    /// The basis of the underlying stream.
    pub fn basis(&self) -> Basis {
        self.meta.basis()
    }
}

/// Progressive reader over an [`MgardStream`]: an [`MgardCursor`] whose
/// plane fetches are served from the borrowed, fully resident stream.
///
/// Created via [`MgardStream::reader`]. Byte accounting starts at the
/// stream's metadata size (a remote retrieval always moves the metadata).
#[derive(Debug, Clone)]
pub struct MgardReader<'a> {
    stream: &'a MgardStream,
    cursor: MgardCursor,
    fetched: usize,
}

impl<'a> MgardReader<'a> {
    pub(crate) fn new(stream: &'a MgardStream) -> Self {
        Self {
            stream,
            cursor: MgardCursor::new(stream.meta()),
            fetched: stream.metadata_bytes(),
        }
    }

    /// The guaranteed L∞ bound of [`MgardReader::reconstruct`] at the
    /// current fetch state (the basis-specific model — this is what the QoI
    /// machinery consumes as the primary-data ε).
    pub fn guaranteed_bound(&self) -> f64 {
        self.cursor.guaranteed_bound()
    }

    /// Total bytes this reader has "moved" (metadata + fetched planes).
    pub fn total_fetched(&self) -> usize {
        self.fetched
    }

    /// True when every plane of every level has been fetched.
    pub fn fully_fetched(&self) -> bool {
        self.cursor.fully_fetched()
    }

    /// Serves the cursor's next wanted plane from the resident stream.
    /// Returns the plane's byte size, or `None` when exhausted.
    fn fetch_next(&mut self) -> Result<Option<usize>> {
        let Some((l, p)) = self.cursor.next_plane() else {
            return Ok(None);
        };
        let seg = &self.stream.levels[l].planes[p];
        self.cursor.push_plane(l, seg)?;
        self.fetched += seg.len();
        Ok(Some(seg.len()))
    }

    /// Fetches planes (greedy, largest-contribution level first) until the
    /// guaranteed bound is ≤ `eb` or the stream is exhausted. Returns the
    /// number of newly fetched bytes.
    ///
    /// The request may end with `guaranteed_bound() > eb` only if the stream
    /// is fully fetched (near-lossless floor) — Definition 1's "or a
    /// full-fidelity representation is retrieved".
    pub fn refine_to(&mut self, eb: f64) -> Result<usize> {
        let mut newly = 0usize;
        while self.cursor.guaranteed_bound() > eb {
            match self.fetch_next()? {
                Some(n) => newly += n,
                None => break, // exhausted
            }
        }
        Ok(newly)
    }

    /// Planes consumed so far, per level — the reader's resumable progress
    /// marker.
    pub fn planes_read(&self) -> Vec<u32> {
        self.cursor.planes_read()
    }

    /// Restores a reader to a previously recorded per-level plane state by
    /// replaying the stored segments (deterministic: same stream + same
    /// counts ⇒ identical reconstruction and byte accounting). Must be
    /// called on a fresh reader.
    pub fn restore(&mut self, planes_per_level: &[u32]) -> Result<usize> {
        if planes_per_level.len() != self.stream.levels.len() {
            return Err(pqr_util::error::PqrError::InvalidRequest(format!(
                "progress has {} levels, stream has {}",
                planes_per_level.len(),
                self.stream.levels.len()
            )));
        }
        let mut newly = 0usize;
        for (l, &k) in planes_per_level.iter().enumerate() {
            if k as usize > self.stream.levels[l].planes.len() {
                return Err(pqr_util::error::PqrError::InvalidRequest(format!(
                    "progress wants {k} planes of level {l}, stream has {}",
                    self.stream.levels[l].planes.len()
                )));
            }
            for idx in self.cursor.planes_read()[l] as usize..k as usize {
                let seg = &self.stream.levels[l].planes[idx];
                self.cursor.push_plane(l, seg)?;
                newly += seg.len();
                self.fetched += seg.len();
            }
        }
        Ok(newly)
    }

    /// Fetches `k` more planes round-robin-greedily regardless of a target —
    /// used by benches exploring fixed-budget retrieval.
    pub fn fetch_planes(&mut self, k: usize) -> Result<usize> {
        let mut newly = 0usize;
        for _ in 0..k {
            match self.fetch_next()? {
                Some(n) => newly += n,
                None => break,
            }
        }
        Ok(newly)
    }

    /// Recomposes the data representation from the planes fetched so far.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.cursor.reconstruct()
    }

    /// [`MgardCursor::reconstruct_into`]: pooled-buffer, `workers`-way
    /// reconstruction (bit-identical to [`MgardReader::reconstruct`]).
    /// Returns the number of recompose passes executed.
    pub fn reconstruct_into(&self, out: &mut Vec<f64>, workers: usize) -> u64 {
        self.cursor.reconstruct_into(out, workers)
    }

    /// Progression in **resolution** — see
    /// [`MgardCursor::reconstruct_at_resolution`].
    pub fn reconstruct_at_resolution(&self, drop_finest: usize) -> (Vec<f64>, Vec<usize>) {
        self.cursor.reconstruct_at_resolution(drop_finest)
    }

    /// The basis of the underlying stream.
    pub fn basis(&self) -> Basis {
        self.cursor.basis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refactor::MgardRefactorer;
    use pqr_util::stats::max_abs_diff;

    fn field(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x * 9.0).sin() * 4.0 + (x * 31.0).cos() + 6.0 * x
            })
            .collect()
    }

    #[test]
    fn refine_meets_requested_bounds_and_real_error_below_guarantee() {
        let data = field(2000);
        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let stream = MgardRefactorer::new(basis)
                .refactor(&data, &[2000])
                .unwrap();
            let mut reader = stream.reader();
            for eb in [1e-1, 1e-3, 1e-5, 1e-8] {
                reader.refine_to(eb).unwrap();
                assert!(
                    reader.guaranteed_bound() <= eb,
                    "{basis:?} eb={eb}: bound {}",
                    reader.guaranteed_bound()
                );
                let recon = reader.reconstruct();
                let real = max_abs_diff(&data, &recon);
                assert!(
                    real <= reader.guaranteed_bound(),
                    "{basis:?} eb={eb}: real {real} > guarantee {}",
                    reader.guaranteed_bound()
                );
            }
        }
    }

    #[test]
    fn progressive_fetching_is_incremental() {
        let data = field(4096);
        let stream = MgardRefactorer::default().refactor(&data, &[4096]).unwrap();
        let mut reader = stream.reader();
        let b1 = reader.refine_to(1e-2).unwrap();
        let t1 = reader.total_fetched();
        let b2 = reader.refine_to(1e-6).unwrap();
        let t2 = reader.total_fetched();
        assert!(b1 > 0 && b2 > 0);
        assert_eq!(t2, t1 + b2, "byte accounting must be cumulative");
        // re-requesting an already-satisfied bound fetches nothing
        assert_eq!(reader.refine_to(1e-4).unwrap(), 0);
    }

    #[test]
    fn hb_fetches_fewer_bytes_than_ob_for_same_target() {
        // The headline claim behind PMGARD-HB (Fig. 3): the tight estimator
        // stops earlier for the same guaranteed tolerance.
        let data = field(4096);
        let hb = MgardRefactorer::new(Basis::Hierarchical)
            .refactor(&data, &[4096])
            .unwrap();
        let ob = MgardRefactorer::new(Basis::Orthogonal)
            .refactor(&data, &[4096])
            .unwrap();
        let mut rh = hb.reader();
        let mut ro = ob.reader();
        rh.refine_to(1e-5).unwrap();
        ro.refine_to(1e-5).unwrap();
        assert!(
            rh.total_fetched() < ro.total_fetched(),
            "HB {} !< OB {}",
            rh.total_fetched(),
            ro.total_fetched()
        );
    }

    #[test]
    fn ob_real_error_far_below_estimate() {
        // the over-retrieval gap of Fig. 3
        let data = field(4096);
        let stream = MgardRefactorer::new(Basis::Orthogonal)
            .refactor(&data, &[4096])
            .unwrap();
        let mut reader = stream.reader();
        reader.refine_to(1e-4).unwrap();
        let real = max_abs_diff(&data, &reader.reconstruct());
        let est = reader.guaranteed_bound();
        assert!(real < est / 5.0, "real {real} vs est {est}: gap too small");
    }

    #[test]
    fn exhausting_the_stream_reaches_near_lossless() {
        let data = field(600);
        let stream = MgardRefactorer::default().refactor(&data, &[600]).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(0.0).unwrap(); // impossible target → fetch everything
        assert!(reader.fully_fetched());
        let real = max_abs_diff(&data, &reader.reconstruct());
        let range = 12.0;
        assert!(real < 1e-14 * range, "residual {real}");
    }

    #[test]
    fn initial_state_counts_metadata_only() {
        let data = field(128);
        let stream = MgardRefactorer::default().refactor(&data, &[128]).unwrap();
        let reader = stream.reader();
        assert_eq!(reader.total_fetched(), stream.metadata_bytes());
        assert!(reader.guaranteed_bound().is_finite());
    }

    #[test]
    fn fetch_planes_budget_mode() {
        let data = field(1024);
        let stream = MgardRefactorer::default().refactor(&data, &[1024]).unwrap();
        let mut reader = stream.reader();
        let before = reader.guaranteed_bound();
        reader.fetch_planes(5).unwrap();
        assert!(reader.guaranteed_bound() < before);
    }

    #[test]
    fn multidimensional_retrieval() {
        let data = field(32 * 20);
        let stream = MgardRefactorer::new(Basis::Hierarchical)
            .refactor(&data, &[32, 20])
            .unwrap();
        let mut reader = stream.reader();
        reader.refine_to(1e-4).unwrap();
        let recon = reader.reconstruct();
        let real = max_abs_diff(&data, &recon);
        assert!(real <= reader.guaranteed_bound());
        assert!(reader.guaranteed_bound() <= 1e-4);
    }

    #[test]
    fn resolution_progression_samples_coarse_grid() {
        let data = field(257);
        let stream = MgardRefactorer::default().refactor(&data, &[257]).unwrap();
        let mut reader = stream.reader();
        reader.refine_to(1e-10).unwrap();

        // drop 0 levels = full resolution
        let (full, dims0) = reader.reconstruct_at_resolution(0);
        assert_eq!(dims0, vec![257]);
        assert_eq!(full.len(), 257);
        assert!(max_abs_diff(&data, &full) <= reader.guaranteed_bound());

        // drop 3 levels = stride-8 subgrid; values close to the original at
        // those grid points (smooth field ⇒ dropped fine coefficients are
        // small)
        let (coarse, dims3) = reader.reconstruct_at_resolution(3);
        assert_eq!(dims3, vec![33]);
        assert_eq!(coarse.len(), 33);
        let sampled: Vec<f64> = (0..257).step_by(8).map(|i| data[i]).collect();
        let err = max_abs_diff(&sampled, &coarse);
        let range = 12.0;
        assert!(err < 0.05 * range, "coarse error {err}");
    }

    #[test]
    fn resolution_progression_2d_dims() {
        let data = field(20 * 13);
        let stream = MgardRefactorer::default()
            .refactor(&data, &[20, 13])
            .unwrap();
        let mut reader = stream.reader();
        reader.refine_to(1e-8).unwrap();
        let (coarse, dims) = reader.reconstruct_at_resolution(1);
        assert_eq!(dims, vec![10, 7]);
        assert_eq!(coarse.len(), 70);
        // spot-check the (2, 4) coarse point == full recon at (4, 8)
        let full = reader.reconstruct();
        let c = coarse[2 * 7 + 4];
        let f = full[4 * 13 + 8];
        assert!((c - f).abs() < 0.2, "coarse {c} vs full {f}");
    }

    #[test]
    fn reconstruct_into_pooled_and_parallel_bit_identical() {
        let data = field(20_000);
        let stream = MgardRefactorer::new(Basis::Orthogonal)
            .refactor(&data, &[20_000])
            .unwrap();
        let mut reader = stream.reader();
        reader.refine_to(1e-6).unwrap();
        let serial = reader.reconstruct();
        // dirty pooled buffer of the wrong size must not leak through
        let mut buf = vec![1.23f64; 7];
        for workers in [1usize, 2, 4] {
            let passes = reader.reconstruct_into(&mut buf, workers);
            assert!(passes > 0);
            assert_eq!(buf, serial, "workers={workers}");
        }
    }

    /// The pre-optimization resolution path: zero the dropped levels,
    /// recompose at *full* resolution, sample the subgrid. The direct
    /// coarse-grid recompose must reproduce it bit for bit.
    fn resolution_oracle(cursor: &MgardCursor, drop_finest: usize) -> (Vec<f64>, Vec<usize>) {
        let dims = cursor.meta.dims();
        let n: usize = dims.iter().product();
        let levels = level_strides(dims);
        let drop = drop_finest.min(levels.len());
        let mut v = vec![0.0f64; n];
        v[0] = cursor.meta.root();
        for (l, &s) in levels.iter().enumerate() {
            if l >= drop {
                scatter_level(&mut v, dims, s, &cursor.decoders[l].coefficients());
            }
        }
        crate::transform::recompose(&mut v, dims, cursor.meta.basis());
        let stride = 1usize << drop;
        let coarse_dims: Vec<usize> = dims.iter().map(|&d| d.div_ceil(stride)).collect();
        let full_strides = crate::hierarchy::strides(dims);
        let mut out = Vec::with_capacity(coarse_dims.iter().product());
        let mut coord = vec![0usize; dims.len()];
        'outer: loop {
            let idx: usize = coord
                .iter()
                .zip(&full_strides)
                .map(|(c, k)| c * stride * k)
                .sum();
            out.push(v[idx]);
            let mut a = dims.len();
            loop {
                if a == 0 {
                    break 'outer;
                }
                a -= 1;
                coord[a] += 1;
                if coord[a] < coarse_dims[a] {
                    break;
                }
                coord[a] = 0;
            }
        }
        (out, coarse_dims)
    }

    #[test]
    fn coarse_grid_resolution_matches_full_recompose_sampling() {
        let data = field(257);
        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let stream = MgardRefactorer::new(basis).refactor(&data, &[257]).unwrap();
            let mut reader = stream.reader();
            reader.refine_to(1e-8).unwrap();
            for drop in [0usize, 1, 3] {
                let (coarse, dims) = reader.reconstruct_at_resolution(drop);
                let (want, want_dims) = resolution_oracle(&reader.cursor, drop);
                assert_eq!(dims, want_dims, "{basis:?} drop={drop}");
                assert_eq!(coarse, want, "{basis:?} drop={drop}");
            }
            // drop=0 equals the plain full reconstruction exactly
            let (full_view, _) = reader.reconstruct_at_resolution(0);
            assert_eq!(full_view, reader.reconstruct(), "{basis:?}");
        }
        // and in 2-D, where the subgrid strides differ per axis
        let data2 = field(20 * 13);
        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let stream2 = MgardRefactorer::new(basis)
                .refactor(&data2, &[20, 13])
                .unwrap();
            let mut r2 = stream2.reader();
            r2.refine_to(1e-8).unwrap();
            for drop in [1usize, 2] {
                let (coarse2, dims2) = r2.reconstruct_at_resolution(drop);
                let (want2, want_dims2) = resolution_oracle(&r2.cursor, drop);
                assert_eq!(dims2, want_dims2, "{basis:?} drop={drop}");
                assert_eq!(coarse2, want2, "{basis:?} drop={drop}");
            }
        }
    }

    #[test]
    fn dropping_all_levels_leaves_root_interpolation() {
        let data = field(64);
        let stream = MgardRefactorer::default().refactor(&data, &[64]).unwrap();
        let reader = stream.reader();
        let (coarse, dims) = reader.reconstruct_at_resolution(99);
        assert_eq!(dims, vec![1]);
        assert_eq!(coarse.len(), 1);
    }

    #[test]
    fn bitrate_decreases_smoothly_with_looser_bounds() {
        // PMGARD's linear-ish rate curve (no snapshot staircases): fetched
        // bytes should strictly grow as bounds tighten, with many distinct
        // sizes (not two or three plateaus).
        let data = field(8192);
        let stream = MgardRefactorer::default().refactor(&data, &[8192]).unwrap();
        let mut sizes = Vec::new();
        for i in 1..=20 {
            let eb = 0.1 * (2.0f64).powi(-i);
            let mut reader = stream.reader();
            reader.refine_to(eb).unwrap();
            sizes.push(reader.total_fetched());
        }
        let distinct: std::collections::BTreeSet<_> = sizes.iter().collect();
        assert!(
            distinct.len() >= 12,
            "only {} distinct sizes",
            distinct.len()
        );
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn plan_to_bound_predicts_the_exact_push_sequence() {
        let data = field(600);
        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let stream = MgardRefactorer::new(basis).refactor(&data, &[600]).unwrap();
            // flat plane index of (level, plane) in storage order
            let level_base: Vec<usize> = {
                let mut bases = Vec::new();
                let mut base = 0usize;
                for lm in stream.meta().levels() {
                    bases.push(base);
                    base += lm.num_planes as usize;
                }
                bases
            };
            let mut cursor = MgardCursor::new(stream.meta());
            for eb in [1.0, 1e-2, 1e-5, 1e-9, 0.0] {
                let plan = cursor.plan_to_bound(eb);
                let mut executed = Vec::new();
                while cursor.guaranteed_bound() > eb {
                    let Some((l, p)) = cursor.next_plane() else {
                        break;
                    };
                    let bytes = stream.plane(level_base[l] + p).unwrap();
                    cursor.push_plane(l, bytes).unwrap();
                    executed.push((l, p));
                }
                assert_eq!(plan, executed, "{basis:?} eb={eb}");
                // planning must not advance the cursor
                assert!(cursor.plan_to_bound(eb).is_empty(), "{basis:?} eb={eb}");
            }
        }
    }
}
