//! Per-level bitplane encoding of multilevel coefficients.
//!
//! Coefficients of one level are normalised by the level exponent
//! `E = floor(log2(max|c|)) + 1` to fixed point with [`PLANES`] fractional
//! bits, then emitted most-significant plane first. Each plane is an
//! independently fetchable segment consisting of the plane's magnitude bits
//! (RLE-compressed — high planes of smooth-field coefficients are almost all
//! zero) followed by the sign bits of the coefficients that *became
//! significant* in this plane (embedded sign coding: signs cost nothing
//! until a coefficient matters).
//!
//! After receiving `k` planes, every coefficient of the level satisfies
//! `|c − ĉ| ≤ 2^{E−k} + 2^{E−PLANES+1}` — truncation plus the fixed-point
//! rounding/clamping slack. Receiving all planes is near-lossless
//! (relative ~1e-18), matching PMGARD's "archive at nearly full accuracy".
//!
//! ## Word-parallel kernels
//!
//! Both directions run word-parallel by default: the encoder transposes the
//! fixed-point magnitudes into plane-major packed words once (64
//! coefficients per [`transpose64`] tile) and emits each plane through the
//! word RLE codec; the decoder keeps its accumulated state *in the
//! plane-major orientation* — consuming a plane is an `O(count / 64)` word
//! append plus word-level significance tracking, and the coefficient-major
//! magnitudes are recovered by one transpose per reconstruction. The
//! streams and the reconstructed values are byte-identical to the scalar
//! reference ([`encode_level_scalar`], [`LevelDecoder::new_scalar`]), which
//! stays available for cross-checking and benchmarking and serves requests
//! when `PQR_SCALAR_KERNELS=1`.

use pqr_util::bitplane_simd::{scalar_kernels, transpose64};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::rle::{
    decode_bits_auto, decode_bits_auto_words, encode_bits_auto, encode_bits_auto_words,
};

/// Number of bitplanes kept per level (fixed-point fractional bits).
pub const PLANES: u32 = 60;

/// Encodes one level's coefficients; holds the per-plane segments.
#[derive(Debug, Clone)]
pub struct EncodedLevel {
    /// Level exponent: all |c| < 2^exponent. `None` for an all-zero level
    /// (no planes stored at all).
    pub exponent: Option<i32>,
    /// Number of coefficients.
    pub count: usize,
    /// Per-plane segment bytes, MSB plane first (`PLANES` entries, empty if
    /// the level is all-zero).
    pub planes: Vec<Vec<u8>>,
}

/// Truncation error bound after receiving `k` of the level's planes.
///
/// `exponent = None` (all-zero level) needs no data: the error is 0.
pub fn truncation_error(exponent: Option<i32>, k: u32) -> f64 {
    match exponent {
        None => 0.0,
        Some(e) => exp2(e - k as i32) + exp2(e - PLANES as i32 + 1),
    }
}

/// `2^e` for possibly large-negative `e` without going through powi's
/// domain checks.
#[inline]
fn exp2(e: i32) -> f64 {
    (e as f64).exp2()
}

/// The shared normalisation front half of both encoders: level exponent,
/// fixed-point magnitudes and sign flags. `None` for all-zero/empty levels.
fn fixed_point(coeffs: &[f64]) -> Option<(i32, Vec<u64>, Vec<bool>)> {
    let count = coeffs.len();
    let max_abs = coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs()));
    if max_abs == 0.0 || count == 0 {
        return None;
    }
    // E such that |c| < 2^E for all c (strict: frac < 1).
    let mut e = max_abs.log2().floor() as i32 + 1;
    if max_abs * exp2(-e) >= 1.0 {
        e += 1; // log2 float slack
    }

    // Fixed-point magnitudes m ∈ [0, 2^PLANES) and signs.
    let scale = exp2(PLANES as i32 - e);
    let max_m = (1u64 << PLANES) - 1;
    let ms: Vec<u64> = coeffs
        .iter()
        .map(|c| {
            let m = (c.abs() * scale).round() as u64;
            m.min(max_m)
        })
        .collect();
    let negs: Vec<bool> = coeffs.iter().map(|c| *c < 0.0).collect();
    Some((e, ms, negs))
}

/// Frames one plane segment: length-prefixed magnitude-bit blob + sign blob.
fn frame_plane(bit_blob: Vec<u8>, sign_blob: Vec<u8>) -> Vec<u8> {
    // u32 length prefixes: plane segments are numerous, keep them lean
    let mut w = ByteWriter::with_capacity(bit_blob.len() + sign_blob.len() + 8);
    w.put_u32(bit_blob.len() as u32);
    w.put_raw(&bit_blob);
    w.put_u32(sign_blob.len() as u32);
    w.put_raw(&sign_blob);
    w.finish()
}

/// Encodes a level's coefficients into per-plane segments.
///
/// Word-parallel: one bit-matrix transpose per 64 coefficients yields every
/// plane's packed bits at once; significance tracking and sign collection
/// run on words. Byte-identical to [`encode_level_scalar`] (property-tested)
/// and falls back to it under `PQR_SCALAR_KERNELS=1`.
pub fn encode_level(coeffs: &[f64]) -> EncodedLevel {
    if scalar_kernels() {
        return encode_level_scalar(coeffs);
    }
    let count = coeffs.len();
    let Some((e, ms, negs)) = fixed_point(coeffs) else {
        return EncodedLevel {
            exponent: None,
            count,
            planes: Vec::new(),
        };
    };
    let nchunks = count.div_ceil(64);
    let neg_words = pqr_util::bitplane_simd::pack_bits(&negs);

    // Transpose the magnitude matrix to plane-major packed words: plane p's
    // word for chunk c is the transposed tile's row `PLANES - 1 - p`.
    let mut plane_words = vec![0u64; PLANES as usize * nchunks];
    let mut tile = [0u64; 64];
    for c in 0..nchunks {
        tile.fill(0);
        let lo = c * 64;
        for (j, &m) in ms[lo..(lo + 64).min(count)].iter().enumerate() {
            tile[j] = m;
        }
        transpose64(&mut tile);
        for p in 0..PLANES as usize {
            plane_words[p * nchunks + c] = tile[PLANES as usize - 1 - p];
        }
    }

    let mut sig = vec![0u64; nchunks];
    let mut sign_words: Vec<u64> = Vec::with_capacity(nchunks);
    let mut planes = Vec::with_capacity(PLANES as usize);
    for p in 0..PLANES as usize {
        let pw = &plane_words[p * nchunks..(p + 1) * nchunks];
        // signs of the coefficients that become significant in this plane,
        // in ascending coefficient order
        sign_words.clear();
        sign_words.resize(nchunks, 0);
        let mut nsigns = 0usize;
        for (c, (&w, s)) in pw.iter().zip(sig.iter_mut()).enumerate() {
            let mut newly = w & !*s;
            *s |= w;
            while newly != 0 {
                let j = newly.trailing_zeros();
                let neg = (neg_words[c] >> j) & 1;
                sign_words[nsigns / 64] |= neg << (nsigns % 64);
                nsigns += 1;
                newly &= newly - 1;
            }
        }
        let bit_blob = encode_bits_auto_words(pw, count);
        let sign_blob = encode_bits_auto_words(&sign_words, nsigns);
        planes.push(frame_plane(bit_blob, sign_blob));
    }
    EncodedLevel {
        exponent: Some(e),
        count,
        planes,
    }
}

/// The scalar reference encoder: one coefficient per inner-loop step.
/// Kept callable so tests and benches can assert/measure the word-parallel
/// path against it.
pub fn encode_level_scalar(coeffs: &[f64]) -> EncodedLevel {
    let count = coeffs.len();
    let Some((e, ms, negs)) = fixed_point(coeffs) else {
        return EncodedLevel {
            exponent: None,
            count,
            planes: Vec::new(),
        };
    };
    let mut planes = Vec::with_capacity(PLANES as usize);
    let mut significant = vec![false; count];
    for p in 0..PLANES {
        let shift = PLANES - 1 - p;
        let mut bits = Vec::with_capacity(count);
        let mut signs = Vec::new();
        for j in 0..count {
            let bit = (ms[j] >> shift) & 1 == 1;
            bits.push(bit);
            if bit && !significant[j] {
                significant[j] = true;
                signs.push(negs[j]);
            }
        }
        planes.push(frame_plane(
            encode_bits_auto(&bits),
            encode_bits_auto(&signs),
        ));
    }
    EncodedLevel {
        exponent: Some(e),
        count,
        planes,
    }
}

/// Incremental decoder: feed planes in order, read out coefficient values.
#[derive(Debug, Clone)]
pub struct LevelDecoder {
    exponent: Option<i32>,
    count: usize,
    planes_read: u32,
    state: DecodeState,
}

/// The decoder's accumulated per-coefficient state, in one of two
/// orientations.
#[derive(Debug, Clone)]
enum DecodeState {
    /// Coefficient-major scalar reference: magnitudes accumulate bit by bit.
    Scalar {
        /// Accumulated magnitudes (fixed point).
        ms: Vec<u64>,
        /// Sign of each coefficient (valid once significant).
        negs: Vec<bool>,
        significant: Vec<bool>,
    },
    /// Plane-major word state: consumed planes stay packed as decoded;
    /// magnitudes are recovered by transpose on demand.
    Words {
        /// Consumed planes' packed bits, plane-major (`planes_read` rows of
        /// `count.div_ceil(64)` words).
        planes: Vec<u64>,
        /// Packed significance bits.
        sig: Vec<u64>,
        /// Packed sign bits (valid once significant).
        negs: Vec<u64>,
    },
}

impl LevelDecoder {
    /// Creates a decoder for a level with the given exponent and size,
    /// using the word-parallel kernel (scalar under `PQR_SCALAR_KERNELS=1`).
    pub fn new(exponent: Option<i32>, count: usize) -> Self {
        if scalar_kernels() {
            return Self::new_scalar(exponent, count);
        }
        let nchunks = count.div_ceil(64);
        Self {
            exponent,
            count,
            planes_read: 0,
            state: DecodeState::Words {
                planes: Vec::new(),
                sig: vec![0; nchunks],
                negs: vec![0; nchunks],
            },
        }
    }

    /// Creates a decoder pinned to the scalar reference path — the oracle
    /// the word-parallel kernel is property-tested against.
    pub fn new_scalar(exponent: Option<i32>, count: usize) -> Self {
        Self {
            exponent,
            count,
            planes_read: 0,
            state: DecodeState::Scalar {
                ms: vec![0; count],
                negs: vec![false; count],
                significant: vec![false; count],
            },
        }
    }

    /// Number of planes consumed so far.
    pub fn planes_read(&self) -> u32 {
        self.planes_read
    }

    /// Current per-coefficient truncation error bound.
    pub fn error_bound(&self) -> f64 {
        truncation_error(self.exponent, self.planes_read)
    }

    /// Consumes the next plane segment (must be fed strictly in order).
    pub fn push_plane(&mut self, segment: &[u8]) -> Result<()> {
        let Some(_) = self.exponent else {
            return Err(PqrError::InvalidRequest(
                "all-zero level has no planes".into(),
            ));
        };
        if self.planes_read >= PLANES {
            return Err(PqrError::InvalidRequest("level already complete".into()));
        }
        let mut r = ByteReader::new(segment);
        let bit_len = r.get_u32()? as usize;
        let bit_blob = r.get_raw(bit_len)?;
        let sign_len = r.get_u32()? as usize;
        let sign_blob = r.get_raw(sign_len)?;
        match &mut self.state {
            DecodeState::Scalar {
                ms,
                negs,
                significant,
            } => {
                let bits = decode_bits_auto(bit_blob, self.count)?;
                // the first-significances this plane introduces (indexing
                // three parallel per-coefficient arrays by j); both blobs
                // are validated before any state mutates, so a corrupt
                // sign blob leaves the decoder untouched — matching the
                // word path exactly, errors included
                let newly: Vec<usize> = (0..self.count)
                    .filter(|&j| bits[j] && !significant[j])
                    .collect();
                let signs = decode_bits_auto(sign_blob, newly.len())?;
                let shift = PLANES - 1 - self.planes_read;
                for (j, &bit) in bits.iter().enumerate() {
                    if bit {
                        ms[j] |= 1u64 << shift;
                        significant[j] = true;
                    }
                }
                for (&sign, &j) in signs.iter().zip(&newly) {
                    negs[j] = sign;
                }
            }
            DecodeState::Words { planes, sig, negs } => {
                let words = decode_bits_auto_words(bit_blob, self.count)?;
                let nsigns: usize = words
                    .iter()
                    .zip(sig.iter())
                    .map(|(&w, &s)| (w & !s).count_ones() as usize)
                    .sum();
                let signs = decode_bits_auto_words(sign_blob, nsigns)?;
                // both blobs decoded — mutate only now, so a corrupt sign
                // blob leaves the decoder untouched
                let mut si = 0usize;
                for (c, (&w, s)) in words.iter().zip(sig.iter_mut()).enumerate() {
                    let mut newly = w & !*s;
                    *s |= w;
                    while newly != 0 {
                        let j = newly.trailing_zeros();
                        negs[c] |= ((signs[si / 64] >> (si % 64)) & 1) << j;
                        si += 1;
                        newly &= newly - 1;
                    }
                }
                planes.extend_from_slice(&words);
            }
        }
        self.planes_read += 1;
        Ok(())
    }

    /// Reconstructs coefficient `j` from the planes received so far.
    #[inline]
    pub fn coefficient(&self, j: usize) -> f64 {
        let Some(e) = self.exponent else {
            return 0.0;
        };
        let (m, neg) = match &self.state {
            DecodeState::Scalar { ms, negs, .. } => (ms[j], negs[j]),
            DecodeState::Words { planes, negs, .. } => {
                let nchunks = self.count.div_ceil(64);
                let (c, b) = (j / 64, j % 64);
                let mut m = 0u64;
                for p in 0..self.planes_read {
                    let bit = (planes[p as usize * nchunks + c] >> b) & 1;
                    m |= bit << (PLANES - 1 - p);
                }
                (m, (negs[c] >> b) & 1 == 1)
            }
        };
        let v = m as f64 * exp2(e - PLANES as i32);
        if neg {
            -v
        } else {
            v
        }
    }

    /// All coefficients at current precision.
    pub fn coefficients(&self) -> Vec<f64> {
        let Some(e) = self.exponent else {
            return vec![0.0; self.count];
        };
        match &self.state {
            DecodeState::Scalar { .. } => (0..self.count).map(|j| self.coefficient(j)).collect(),
            DecodeState::Words { planes, negs, .. } => {
                // transpose the consumed planes back to coefficient-major
                // magnitudes, one 64×64 tile per 64 coefficients
                let scale = exp2(e - PLANES as i32);
                let nchunks = self.count.div_ceil(64);
                let mut out = Vec::with_capacity(self.count);
                let mut tile = [0u64; 64];
                for c in 0..nchunks {
                    tile.fill(0);
                    for p in 0..self.planes_read as usize {
                        tile[PLANES as usize - 1 - p] = planes[p * nchunks + c];
                    }
                    transpose64(&mut tile);
                    let neg = negs[c];
                    let take = (self.count - c * 64).min(64);
                    for (j, &m) in tile[..take].iter().enumerate() {
                        let v = m as f64 * scale;
                        out.push(if (neg >> j) & 1 == 1 { -v } else { v });
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coeffs(n: usize, scale: f64) -> Vec<f64> {
        let mut s = 0x5a5a5a5au64;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s as f64 / u64::MAX as f64) * 2.0 - 1.0) * scale
            })
            .collect()
    }

    fn decode_k(enc: &EncodedLevel, k: u32) -> LevelDecoder {
        let mut d = LevelDecoder::new(enc.exponent, enc.count);
        for p in 0..k as usize {
            d.push_plane(&enc.planes[p]).unwrap();
        }
        d
    }

    #[test]
    fn word_encoder_is_byte_identical_to_scalar() {
        for (n, scale) in [
            (1usize, 1.0),
            (63, 0.3),
            (64, 2.0),
            (65, 1e-5),
            (500, 3.7),
            (1000, 1e6),
        ] {
            let mut coeffs = sample_coeffs(n, scale);
            if n > 2 {
                coeffs[n / 2] = 0.0; // keep a never-significant coefficient
            }
            let word = encode_level(&coeffs);
            let scalar = encode_level_scalar(&coeffs);
            assert_eq!(word.exponent, scalar.exponent, "n={n}");
            assert_eq!(word.count, scalar.count);
            assert_eq!(word.planes, scalar.planes, "n={n} scale={scale}");
        }
    }

    #[test]
    fn word_decoder_matches_scalar_at_every_depth() {
        let coeffs = sample_coeffs(777, 2.5);
        let enc = encode_level(&coeffs);
        let mut dw = LevelDecoder::new(enc.exponent, enc.count);
        let mut ds = LevelDecoder::new_scalar(enc.exponent, enc.count);
        for p in 0..PLANES as usize {
            dw.push_plane(&enc.planes[p]).unwrap();
            ds.push_plane(&enc.planes[p]).unwrap();
            // bit-identical reconstructions, not approximately equal
            let cw = dw.coefficients();
            let cs = ds.coefficients();
            assert_eq!(cw, cs, "divergence after plane {p}");
            assert_eq!(dw.coefficient(3), ds.coefficient(3));
        }
    }

    #[test]
    fn hostile_segments_fail_identically_through_both_decoders() {
        let coeffs = sample_coeffs(200, 1.1);
        let enc = encode_level(&coeffs);
        let seg = &enc.planes[2];
        let mut hostile: Vec<Vec<u8>> = Vec::new();
        for cut in [0usize, 2, 5, seg.len() / 2, seg.len() - 1] {
            hostile.push(seg[..cut].to_vec());
        }
        // oversized: trailing garbage after a valid segment
        let mut oversized = seg.clone();
        oversized.extend_from_slice(&[0xab; 16]);
        hostile.push(oversized);
        // bit-blob length prefix lying beyond the segment
        let mut lying = seg.clone();
        lying[0..4].copy_from_slice(&(seg.len() as u32 * 2).to_le_bytes());
        hostile.push(lying);
        // corrupt mode byte inside the bit blob
        let mut bad_mode = seg.clone();
        bad_mode[4] = 0x77;
        hostile.push(bad_mode);

        for (i, bad) in hostile.iter().enumerate() {
            let mut dw = decode_k(&enc, 2);
            let mut ds = {
                let mut d = LevelDecoder::new_scalar(enc.exponent, enc.count);
                for p in 0..2 {
                    d.push_plane(&enc.planes[p]).unwrap();
                }
                d
            };
            let rw = dw.push_plane(bad);
            let rs = ds.push_plane(bad);
            assert_eq!(
                rw.is_err(),
                rs.is_err(),
                "case {i} diverged: {rw:?} vs {rs:?}"
            );
            // the valid oversized-trailing case must also decode identically
            if rw.is_ok() {
                assert_eq!(dw.coefficients(), ds.coefficients(), "case {i}");
            }
        }
    }

    #[test]
    fn corrupt_sign_blob_leaves_both_decoders_untouched() {
        // a plane whose bit blob is intact but whose sign blob is corrupt
        // must fail without mutating state, identically in both decoders
        let coeffs = sample_coeffs(300, 1.4);
        let enc = encode_level(&coeffs);
        let seg = &enc.planes[0];
        let mut r = ByteReader::new(seg);
        let bit_len = r.get_u32().unwrap() as usize;
        let bit_blob = r.get_raw(bit_len).unwrap().to_vec();
        let sign_len = r.get_u32().unwrap() as usize;
        let sign_blob = r.get_raw(sign_len).unwrap().to_vec();
        assert!(sign_len > 1, "plane 0 must introduce significances");
        let bad = frame_plane(bit_blob, sign_blob[..1].to_vec());
        for mut d in [
            LevelDecoder::new(enc.exponent, enc.count),
            LevelDecoder::new_scalar(enc.exponent, enc.count),
        ] {
            assert!(d.push_plane(&bad).is_err());
            assert_eq!(d.planes_read(), 0);
            assert_eq!(d.coefficients(), vec![0.0; enc.count], "state mutated");
            // the decoder is still usable: the intact segment now applies
            d.push_plane(seg).unwrap();
            assert_eq!(d.planes_read(), 1);
        }
    }

    #[test]
    fn truncation_error_honoured_at_every_depth() {
        let coeffs = sample_coeffs(500, 3.7);
        let enc = encode_level(&coeffs);
        for k in [1u32, 2, 5, 10, 20, 40, PLANES] {
            let d = decode_k(&enc, k);
            let bound = d.error_bound();
            for (j, &c) in coeffs.iter().enumerate() {
                let err = (d.coefficient(j) - c).abs();
                assert!(err <= bound, "k={k} j={j}: err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn full_depth_is_near_lossless() {
        let coeffs = sample_coeffs(200, 1e3);
        let enc = encode_level(&coeffs);
        let d = decode_k(&enc, PLANES);
        for (j, &c) in coeffs.iter().enumerate() {
            let rel = (d.coefficient(j) - c).abs() / c.abs().max(1e-300);
            assert!(rel < 1e-15, "j={j}: rel err {rel}");
        }
    }

    #[test]
    fn error_decreases_monotonically_with_planes() {
        let coeffs = sample_coeffs(300, 2.0);
        let enc = encode_level(&coeffs);
        let mut prev = f64::INFINITY;
        for k in 1..=PLANES {
            let b = truncation_error(enc.exponent, k);
            assert!(b < prev, "k={k}: {b} !< {prev}");
            prev = b;
        }
    }

    #[test]
    fn signs_recovered_correctly() {
        let coeffs = vec![1.0, -1.0, 0.5, -0.25, 0.0, -0.75];
        let enc = encode_level(&coeffs);
        let d = decode_k(&enc, PLANES);
        for (j, &c) in coeffs.iter().enumerate() {
            assert_eq!(
                d.coefficient(j) < 0.0,
                c < 0.0 && c != 0.0,
                "sign mismatch at {j}"
            );
        }
    }

    #[test]
    fn all_zero_level_costs_nothing() {
        let enc = encode_level(&[0.0; 100]);
        assert_eq!(enc.exponent, None);
        assert!(enc.planes.is_empty());
        assert_eq!(truncation_error(None, 0), 0.0);
        let d = LevelDecoder::new(None, 100);
        assert_eq!(d.coefficient(7), 0.0);
        assert_eq!(d.error_bound(), 0.0);
        assert_eq!(d.coefficients(), vec![0.0; 100]);
    }

    #[test]
    fn empty_level() {
        let enc = encode_level(&[]);
        assert_eq!(enc.count, 0);
        assert_eq!(enc.exponent, None);
    }

    #[test]
    fn high_planes_of_small_coefficients_are_tiny() {
        // coefficients ≪ 2^E ⇒ top planes all-zero ⇒ RLE collapses them
        let mut coeffs = sample_coeffs(10_000, 1e-6);
        coeffs[0] = 1.0; // forces a large exponent
        let enc = encode_level(&coeffs);
        let top: usize = enc.planes[..10].iter().map(|p| p.len()).sum();
        assert!(top < 400, "top-10 planes take {top} B");
    }

    #[test]
    fn exponent_strictly_dominates_magnitudes() {
        for scale in [1e-12, 1.0, 1e12, 0.99999999, 4.000001] {
            let coeffs = vec![scale, -scale / 2.0];
            let enc = encode_level(&coeffs);
            let e = enc.exponent.unwrap();
            assert!(scale < exp2(e), "scale {scale} !< 2^{e}");
            assert!(scale >= exp2(e - 2), "exponent {e} too large for {scale}");
        }
    }

    #[test]
    fn push_past_end_is_error() {
        let enc = encode_level(&[1.0]);
        let mut d = decode_k(&enc, PLANES);
        assert!(d.push_plane(&enc.planes[0]).is_err());
    }

    #[test]
    fn zero_level_rejects_planes() {
        let mut d = LevelDecoder::new(None, 5);
        assert!(d.push_plane(&[]).is_err());
    }

    #[test]
    fn corrupt_plane_detected() {
        let coeffs = sample_coeffs(64, 1.0);
        let enc = encode_level(&coeffs);
        for mut d in [
            LevelDecoder::new(enc.exponent, enc.count),
            LevelDecoder::new_scalar(enc.exponent, enc.count),
        ] {
            assert!(d.push_plane(&enc.planes[0][..2]).is_err());
        }
    }
}
