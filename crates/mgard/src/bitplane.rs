//! Per-level bitplane encoding of multilevel coefficients.
//!
//! Coefficients of one level are normalised by the level exponent
//! `E = floor(log2(max|c|)) + 1` to fixed point with [`PLANES`] fractional
//! bits, then emitted most-significant plane first. Each plane is an
//! independently fetchable segment consisting of the plane's magnitude bits
//! (RLE-compressed — high planes of smooth-field coefficients are almost all
//! zero) followed by the sign bits of the coefficients that *became
//! significant* in this plane (embedded sign coding: signs cost nothing
//! until a coefficient matters).
//!
//! After receiving `k` planes, every coefficient of the level satisfies
//! `|c − ĉ| ≤ 2^{E−k} + 2^{E−PLANES+1}` — truncation plus the fixed-point
//! rounding/clamping slack. Receiving all planes is near-lossless
//! (relative ~1e-18), matching PMGARD's "archive at nearly full accuracy".

use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::rle::{decode_bits_auto, encode_bits_auto};

/// Number of bitplanes kept per level (fixed-point fractional bits).
pub const PLANES: u32 = 60;

/// Encodes one level's coefficients; holds the per-plane segments.
#[derive(Debug, Clone)]
pub struct EncodedLevel {
    /// Level exponent: all |c| < 2^exponent. `None` for an all-zero level
    /// (no planes stored at all).
    pub exponent: Option<i32>,
    /// Number of coefficients.
    pub count: usize,
    /// Per-plane segment bytes, MSB plane first (`PLANES` entries, empty if
    /// the level is all-zero).
    pub planes: Vec<Vec<u8>>,
}

/// Truncation error bound after receiving `k` of the level's planes.
///
/// `exponent = None` (all-zero level) needs no data: the error is 0.
pub fn truncation_error(exponent: Option<i32>, k: u32) -> f64 {
    match exponent {
        None => 0.0,
        Some(e) => exp2(e - k as i32) + exp2(e - PLANES as i32 + 1),
    }
}

/// `2^e` for possibly large-negative `e` without going through powi's
/// domain checks.
#[inline]
fn exp2(e: i32) -> f64 {
    (e as f64).exp2()
}

/// Encodes a level's coefficients into per-plane segments.
pub fn encode_level(coeffs: &[f64]) -> EncodedLevel {
    let count = coeffs.len();
    let max_abs = coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs()));
    if max_abs == 0.0 || count == 0 {
        return EncodedLevel {
            exponent: None,
            count,
            planes: Vec::new(),
        };
    }
    // E such that |c| < 2^E for all c (strict: frac < 1).
    let mut e = max_abs.log2().floor() as i32 + 1;
    if max_abs * exp2(-e) >= 1.0 {
        e += 1; // log2 float slack
    }

    // Fixed-point magnitudes m ∈ [0, 2^PLANES) and signs.
    let scale = exp2(PLANES as i32 - e);
    let max_m = (1u64 << PLANES) - 1;
    let ms: Vec<u64> = coeffs
        .iter()
        .map(|c| {
            let m = (c.abs() * scale).round() as u64;
            m.min(max_m)
        })
        .collect();
    let negs: Vec<bool> = coeffs.iter().map(|c| *c < 0.0).collect();

    let mut planes = Vec::with_capacity(PLANES as usize);
    let mut significant = vec![false; count];
    for p in 0..PLANES {
        let shift = PLANES - 1 - p;
        let mut bits = Vec::with_capacity(count);
        let mut signs = Vec::new();
        for j in 0..count {
            let bit = (ms[j] >> shift) & 1 == 1;
            bits.push(bit);
            if bit && !significant[j] {
                significant[j] = true;
                signs.push(negs[j]);
            }
        }
        // u32 length prefixes: plane segments are numerous, keep them lean
        let bit_blob = encode_bits_auto(&bits);
        let sign_blob = encode_bits_auto(&signs);
        let mut w = ByteWriter::with_capacity(bit_blob.len() + sign_blob.len() + 8);
        w.put_u32(bit_blob.len() as u32);
        w.put_raw(&bit_blob);
        w.put_u32(sign_blob.len() as u32);
        w.put_raw(&sign_blob);
        planes.push(w.finish());
    }
    EncodedLevel {
        exponent: Some(e),
        count,
        planes,
    }
}

/// Incremental decoder: feed planes in order, read out coefficient values.
#[derive(Debug, Clone)]
pub struct LevelDecoder {
    exponent: Option<i32>,
    count: usize,
    /// Accumulated magnitudes (fixed point).
    ms: Vec<u64>,
    /// Sign of each coefficient (valid once significant).
    negs: Vec<bool>,
    significant: Vec<bool>,
    planes_read: u32,
}

impl LevelDecoder {
    /// Creates a decoder for a level with the given exponent and size.
    pub fn new(exponent: Option<i32>, count: usize) -> Self {
        Self {
            exponent,
            count,
            ms: vec![0; count],
            negs: vec![false; count],
            significant: vec![false; count],
            planes_read: 0,
        }
    }

    /// Number of planes consumed so far.
    pub fn planes_read(&self) -> u32 {
        self.planes_read
    }

    /// Current per-coefficient truncation error bound.
    pub fn error_bound(&self) -> f64 {
        truncation_error(self.exponent, self.planes_read)
    }

    /// Consumes the next plane segment (must be fed strictly in order).
    pub fn push_plane(&mut self, segment: &[u8]) -> Result<()> {
        let Some(_) = self.exponent else {
            return Err(PqrError::InvalidRequest(
                "all-zero level has no planes".into(),
            ));
        };
        if self.planes_read >= PLANES {
            return Err(PqrError::InvalidRequest("level already complete".into()));
        }
        let mut r = ByteReader::new(segment);
        let bit_len = r.get_u32()? as usize;
        let bit_blob = r.get_raw(bit_len)?;
        let sign_len = r.get_u32()? as usize;
        let sign_blob = r.get_raw(sign_len)?;
        let bits = decode_bits_auto(bit_blob, self.count)?;
        let shift = PLANES - 1 - self.planes_read;
        // how many first-significances this plane introduces
        // (indexing three parallel per-coefficient arrays by j)
        let mut newly = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.count {
            if bits[j] {
                self.ms[j] |= 1u64 << shift;
                if !self.significant[j] {
                    self.significant[j] = true;
                    newly.push(j);
                }
            }
        }
        let signs = decode_bits_auto(sign_blob, newly.len())?;
        for (&sign, &j) in signs.iter().zip(&newly) {
            self.negs[j] = sign;
        }
        self.planes_read += 1;
        Ok(())
    }

    /// Reconstructs coefficient `j` from the planes received so far.
    #[inline]
    pub fn coefficient(&self, j: usize) -> f64 {
        let Some(e) = self.exponent else {
            return 0.0;
        };
        let v = self.ms[j] as f64 * exp2(e - PLANES as i32);
        if self.negs[j] {
            -v
        } else {
            v
        }
    }

    /// All coefficients at current precision.
    pub fn coefficients(&self) -> Vec<f64> {
        (0..self.count).map(|j| self.coefficient(j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coeffs(n: usize, scale: f64) -> Vec<f64> {
        let mut s = 0x5a5a5a5au64;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s as f64 / u64::MAX as f64) * 2.0 - 1.0) * scale
            })
            .collect()
    }

    fn decode_k(enc: &EncodedLevel, k: u32) -> LevelDecoder {
        let mut d = LevelDecoder::new(enc.exponent, enc.count);
        for p in 0..k as usize {
            d.push_plane(&enc.planes[p]).unwrap();
        }
        d
    }

    #[test]
    fn truncation_error_honoured_at_every_depth() {
        let coeffs = sample_coeffs(500, 3.7);
        let enc = encode_level(&coeffs);
        for k in [1u32, 2, 5, 10, 20, 40, PLANES] {
            let d = decode_k(&enc, k);
            let bound = d.error_bound();
            for (j, &c) in coeffs.iter().enumerate() {
                let err = (d.coefficient(j) - c).abs();
                assert!(err <= bound, "k={k} j={j}: err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn full_depth_is_near_lossless() {
        let coeffs = sample_coeffs(200, 1e3);
        let enc = encode_level(&coeffs);
        let d = decode_k(&enc, PLANES);
        for (j, &c) in coeffs.iter().enumerate() {
            let rel = (d.coefficient(j) - c).abs() / c.abs().max(1e-300);
            assert!(rel < 1e-15, "j={j}: rel err {rel}");
        }
    }

    #[test]
    fn error_decreases_monotonically_with_planes() {
        let coeffs = sample_coeffs(300, 2.0);
        let enc = encode_level(&coeffs);
        let mut prev = f64::INFINITY;
        for k in 1..=PLANES {
            let b = truncation_error(enc.exponent, k);
            assert!(b < prev, "k={k}: {b} !< {prev}");
            prev = b;
        }
    }

    #[test]
    fn signs_recovered_correctly() {
        let coeffs = vec![1.0, -1.0, 0.5, -0.25, 0.0, -0.75];
        let enc = encode_level(&coeffs);
        let d = decode_k(&enc, PLANES);
        for (j, &c) in coeffs.iter().enumerate() {
            assert_eq!(
                d.coefficient(j) < 0.0,
                c < 0.0 && c != 0.0,
                "sign mismatch at {j}"
            );
        }
    }

    #[test]
    fn all_zero_level_costs_nothing() {
        let enc = encode_level(&[0.0; 100]);
        assert_eq!(enc.exponent, None);
        assert!(enc.planes.is_empty());
        assert_eq!(truncation_error(None, 0), 0.0);
        let d = LevelDecoder::new(None, 100);
        assert_eq!(d.coefficient(7), 0.0);
        assert_eq!(d.error_bound(), 0.0);
    }

    #[test]
    fn empty_level() {
        let enc = encode_level(&[]);
        assert_eq!(enc.count, 0);
        assert_eq!(enc.exponent, None);
    }

    #[test]
    fn high_planes_of_small_coefficients_are_tiny() {
        // coefficients ≪ 2^E ⇒ top planes all-zero ⇒ RLE collapses them
        let mut coeffs = sample_coeffs(10_000, 1e-6);
        coeffs[0] = 1.0; // forces a large exponent
        let enc = encode_level(&coeffs);
        let top: usize = enc.planes[..10].iter().map(|p| p.len()).sum();
        assert!(top < 400, "top-10 planes take {top} B");
    }

    #[test]
    fn exponent_strictly_dominates_magnitudes() {
        for scale in [1e-12, 1.0, 1e12, 0.99999999, 4.000001] {
            let coeffs = vec![scale, -scale / 2.0];
            let enc = encode_level(&coeffs);
            let e = enc.exponent.unwrap();
            assert!(scale < exp2(e), "scale {scale} !< 2^{e}");
            assert!(scale >= exp2(e - 2), "exponent {e} too large for {scale}");
        }
    }

    #[test]
    fn push_past_end_is_error() {
        let enc = encode_level(&[1.0]);
        let mut d = decode_k(&enc, PLANES);
        assert!(d.push_plane(&enc.planes[0]).is_err());
    }

    #[test]
    fn zero_level_rejects_planes() {
        let mut d = LevelDecoder::new(None, 5);
        assert!(d.push_plane(&[]).is_err());
    }

    #[test]
    fn corrupt_plane_detected() {
        let coeffs = sample_coeffs(64, 1.0);
        let enc = encode_level(&coeffs);
        let mut d = LevelDecoder::new(enc.exponent, enc.count);
        assert!(d.push_plane(&enc.planes[0][..2]).is_err());
    }
}
