//! L2 projection correction (the "orthogonal basis" ingredient of MGARD).
//!
//! After an axis pass computes fine-node coefficients, MGARD projects the
//! interpolation residual onto the coarse space so that the multilevel
//! decomposition is L2-orthogonal. On a uniform 1-D line with linear (hat)
//! elements this reduces to a tridiagonal mass-matrix solve per line:
//!
//! ```text
//!   M w = b,   b_j = (c_{j-½} + c_{j+½}) / 4,
//! ```
//!
//! where `c_{j±½}` are the adjacent fine coefficients (0 outside the line)
//! and `M` is the (row-scaled) linear-FEM mass matrix — interior rows
//! `(1/6, 2/3, 1/6)`, boundary rows `(1/3, 1/6)`. The correction `w` is
//! *added* to the coarse nodal values during decomposition and recomputed
//! from the (possibly quantized) coefficients and *subtracted* during
//! recomposition, which keeps the transform exactly invertible at full
//! precision.
//!
//! `M` is strictly diagonally dominant — the binding rows are the
//! boundaries with dominance `1/3 − 1/6 = 1/6`, so `‖M⁻¹‖∞ ≤ 6` (measured
//! ≈ 4.73) — and a coefficient error `e` induces a correction error
//! ≤ `6·(2e/4) = 3e`. That factor is the per-pass κ = 3 used by the
//! conservative OB error model ([`crate::error_est`]).

/// Solves the mass system `M w = b` in place (Thomas algorithm).
///
/// `b` enters holding the load vector and leaves holding `w`.
/// Row pattern: `(1/3, 1/6)` at both boundaries, `(1/6, 2/3, 1/6)` interior;
/// a 1×1 system is just `w = 3b`.
pub fn solve_mass_tridiagonal(b: &mut [f64]) {
    let n = b.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        b[0] *= 3.0; // M = [1/3]
        return;
    }
    const DIAG_I: f64 = 2.0 / 3.0;
    const DIAG_B: f64 = 1.0 / 3.0;
    const OFF: f64 = 1.0 / 6.0;

    // Thomas forward sweep: c' = superdiag scratch, b holds rhs then w.
    let mut cp = vec![0.0f64; n - 1];
    let mut denom = DIAG_B;
    cp[0] = OFF / denom;
    b[0] /= denom;
    for i in 1..n {
        let diag = if i == n - 1 { DIAG_B } else { DIAG_I };
        denom = diag - OFF * cp[i - 1];
        if i < n - 1 {
            cp[i] = OFF / denom;
        }
        b[i] = (b[i] - OFF * b[i - 1]) / denom;
    }
    for i in (0..n - 1).rev() {
        b[i] -= cp[i] * b[i + 1];
    }
}

/// Computes the load vector for a coarse line from its adjacent fine
/// coefficients: `b_j = (left + right)/4`, absent neighbours contribute 0.
///
/// * `coef_at(k)` returns the fine coefficient at line position `k` (the
///   fine node between coarse nodes `k/…`), for `k` in `0..n_fine`.
/// * Coarse node `j` (0-based) has left fine neighbour `j−1` and right fine
///   neighbour `j` in fine-position numbering.
pub fn load_vector(n_coarse: usize, n_fine: usize, coef_at: impl Fn(usize) -> f64) -> Vec<f64> {
    let mut b = vec![0.0f64; n_coarse];
    for (j, slot) in b.iter_mut().enumerate() {
        let mut v = 0.0;
        if j >= 1 && j - 1 < n_fine {
            v += coef_at(j - 1);
        }
        if j < n_fine {
            v += coef_at(j);
        }
        *slot = v / 4.0;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multiplies the mass matrix by `w` (reference implementation).
    fn mass_mul(w: &[f64]) -> Vec<f64> {
        let n = w.len();
        let mut out = vec![0.0; n];
        for i in 0..n {
            let diag = if i == 0 || i == n - 1 {
                1.0 / 3.0
            } else {
                2.0 / 3.0
            };
            out[i] = diag * w[i];
            if i > 0 {
                out[i] += w[i - 1] / 6.0;
            }
            if i + 1 < n {
                out[i] += w[i + 1] / 6.0;
            }
        }
        out
    }

    #[test]
    fn solve_inverts_mass_matrix() {
        for n in [1usize, 2, 3, 5, 17, 100] {
            let w_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
            let mut b = mass_mul(&w_true);
            solve_mass_tridiagonal(&mut b);
            for i in 0..n {
                assert!(
                    (b[i] - w_true[i]).abs() < 1e-10,
                    "n={n} i={i}: {} vs {}",
                    b[i],
                    w_true[i]
                );
            }
        }
    }

    #[test]
    fn empty_system_is_noop() {
        let mut b: Vec<f64> = vec![];
        solve_mass_tridiagonal(&mut b);
    }

    #[test]
    fn single_node_scales_by_three() {
        let mut b = vec![2.0];
        solve_mass_tridiagonal(&mut b);
        assert_eq!(b[0], 6.0);
    }

    #[test]
    fn inverse_infinity_norm_bounded_by_six() {
        // ‖M⁻¹‖∞ ≤ 6 (boundary-row diagonal dominance 1/6): solve against
        // unit loads and check the max column sum (== row sum by symmetry).
        let n = 64;
        let mut worst = 0.0f64;
        for k in 0..n {
            let mut b = vec![0.0; n];
            b[k] = 1.0;
            solve_mass_tridiagonal(&mut b);
            let s: f64 = b.iter().map(|v| v.abs()).sum();
            worst = worst.max(s);
        }
        assert!(worst <= 6.0 + 1e-9, "‖M⁻¹‖∞ ≈ {worst}");
        // and it is genuinely worse than the interior-only bound of 3,
        // which is why κ = 3 (not 1.5) in the OB model
        assert!(worst > 3.0, "‖M⁻¹‖∞ ≈ {worst}");
    }

    #[test]
    fn load_vector_interior_and_boundaries() {
        // 3 coarse, 2 fine: b0 = c0/4, b1 = (c0+c1)/4, b2 = c1/4
        let c = [4.0, 8.0];
        let b = load_vector(3, 2, |k| c[k]);
        assert_eq!(b, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn load_vector_no_fine_nodes() {
        let b = load_vector(2, 0, |_| unreachable!());
        assert_eq!(b, vec![0.0, 0.0]);
    }

    #[test]
    fn correction_error_bounded_by_3x_coefficient_error() {
        // coefficient errors of magnitude ≤ e → ‖w_err‖∞ ≤ 3·e
        // (module-doc claim). Try uniform and alternating-sign loads; the
        // alternating case is the adversarial one.
        let n_coarse = 33;
        let n_fine = 32;
        let e = 1e-3;
        for alternating in [false, true] {
            let coef = |k: usize| {
                if alternating && k % 2 == 1 {
                    -e
                } else {
                    e
                }
            };
            let mut b = load_vector(n_coarse, n_fine, coef);
            solve_mass_tridiagonal(&mut b);
            let worst = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(worst <= 3.0 * e + 1e-15, "alt={alternating}: {worst}");
        }
    }
}
