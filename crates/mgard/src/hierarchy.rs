//! Dyadic level hierarchy and point enumeration on arbitrary extents.
//!
//! A level step transforms the grid of stride `s` (all coordinates multiples
//! of `s`) into the grid of stride `2s` plus *fine-node coefficients*. Fine
//! nodes along `axis` at level `s` have `coord[axis] ≡ s (mod 2s)`; axes
//! *before* the active one have already been refined this level (multiples
//! of `s`), axes *after* it have not (multiples of `2s`). Both the
//! decomposition (fine→coarse, reverse axis order) and the recomposition
//! (coarse→fine, forward axis order) enumerate exactly these sets — the two
//! directions are mirror images, which is what makes the transform exactly
//! invertible.

/// Row-major element strides of a shape.
pub fn strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * dims[i + 1];
    }
    s
}

/// The level strides of a shape: `{2^j : 2^j < max(dims)}`, finest first.
/// Empty when every extent is ≤ 1 (nothing to decompose).
pub fn level_strides(dims: &[usize]) -> Vec<usize> {
    let max_dim = dims.iter().copied().max().unwrap_or(0);
    if max_dim <= 1 {
        return Vec::new();
    }
    let mut v = Vec::new();
    let mut s = 1usize;
    while s < max_dim {
        v.push(s);
        s *= 2;
    }
    v
}

/// Which point set of an axis pass to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointSet {
    /// Fine nodes: `coord[axis] ≡ s (mod 2s)`.
    Fine,
    /// Coarse nodes: `coord[axis] ≡ 0 (mod 2s)` (the L2-correction targets).
    Coarse,
}

/// Enumerates the points of the `axis` pass at level stride `s`.
///
/// `f(flat_index, coord_along_axis)` is called in a deterministic order
/// (odometer, last axis fastest) — the same order on the compression and
/// reconstruction sides, and the order used to group level coefficients for
/// bitplane coding.
pub fn for_each_point(
    dims: &[usize],
    axis: usize,
    s: usize,
    set: PointSet,
    mut f: impl FnMut(usize, usize),
) {
    let nd = dims.len();
    debug_assert!(axis < nd);
    let st = strides(dims);
    let axis_start = match set {
        PointSet::Fine => s,
        PointSet::Coarse => 0,
    };
    if axis_start >= dims[axis] {
        return;
    }
    let mut coord = vec![0usize; nd];
    coord[axis] = axis_start;
    'outer: loop {
        let idx: usize = coord.iter().zip(&st).map(|(c, k)| c * k).sum();
        f(idx, coord[axis]);

        // advance odometer, last axis fastest
        let mut a = nd;
        loop {
            if a == 0 {
                break 'outer;
            }
            a -= 1;
            let step = if a == axis {
                2 * s
            } else if a < axis {
                s
            } else {
                2 * s
            };
            coord[a] += step;
            if coord[a] < dims[a] {
                break;
            }
            coord[a] = if a == axis { axis_start } else { 0 };
        }
    }
}

/// Enumerates the *lines* of an axis pass at stride `s`: calls
/// `f(base_flat_index)` once per line, where a line is the set of points
/// sharing all non-axis coordinates (axes before the active one on the
/// `s`-grid, after it on the `2s`-grid). Walk the line from `base` with the
/// axis element stride.
pub fn for_each_line(dims: &[usize], axis: usize, s: usize, mut f: impl FnMut(usize)) {
    let nd = dims.len();
    let st = strides(dims);
    let mut coord = vec![0usize; nd];
    'outer: loop {
        let idx: usize = coord.iter().zip(&st).map(|(c, k)| c * k).sum();
        f(idx);
        let mut a = nd;
        loop {
            if a == 0 {
                break 'outer;
            }
            a -= 1;
            if a == axis {
                continue; // the line direction is not enumerated
            }
            let step = if a < axis { s } else { 2 * s };
            coord[a] += step;
            if coord[a] < dims[a] {
                break;
            }
            coord[a] = 0;
        }
        if nd == 1 {
            break; // single line in 1-D
        }
    }
}

/// Number of fine nodes introduced by the full level step at stride `s`
/// (union over all axis passes) — the size of the level's coefficient group.
pub fn level_coefficient_count(dims: &[usize], s: usize) -> usize {
    let mut count = 0usize;
    for axis in 0..dims.len() {
        if s >= dims[axis] {
            continue;
        }
        let fine_axis = count_grid(dims[axis], s, true);
        let mut prod = fine_axis;
        for (a, &d) in dims.iter().enumerate() {
            if a == axis {
                continue;
            }
            let stride = if a < axis { s } else { 2 * s };
            prod *= count_grid(d, stride, false);
        }
        count += prod;
    }
    count
}

/// Number of grid coordinates in `[0, dim)`: multiples of `2s` offset by `s`
/// (fine) or multiples of `stride` (coarse, pass `s=stride`).
fn count_grid(dim: usize, s: usize, fine: bool) -> usize {
    if fine {
        if s >= dim {
            0
        } else {
            (dim - 1 - s) / (2 * s) + 1
        }
    } else {
        (dim - 1) / s + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn level_strides_examples() {
        assert_eq!(level_strides(&[1]), Vec::<usize>::new());
        assert_eq!(level_strides(&[2]), vec![1]);
        assert_eq!(level_strides(&[5]), vec![1, 2, 4]);
        assert_eq!(level_strides(&[64]), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(level_strides(&[65]), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(level_strides(&[3, 9]), vec![1, 2, 4, 8]);
    }

    /// The union of all (level, axis) fine sets plus the origin must tile the
    /// whole array exactly once.
    fn assert_partition(dims: &[usize]) {
        let n: usize = dims.iter().product();
        let mut seen = vec![0u32; n];
        seen[0] += 1; // root
        for &s in &level_strides(dims) {
            for axis in 0..dims.len() {
                for_each_point(dims, axis, s, PointSet::Fine, |idx, _| {
                    seen[idx] += 1;
                });
            }
        }
        for (i, &c) in seen.iter().enumerate() {
            assert_eq!(c, 1, "dims {dims:?}: index {i} covered {c}×");
        }
    }

    #[test]
    fn fine_sets_partition_the_array() {
        for dims in [
            vec![1],
            vec![2],
            vec![3],
            vec![17],
            vec![64],
            vec![65],
            vec![5, 9],
            vec![16, 16],
            vec![7, 1],
            vec![4, 3, 7],
            vec![8, 8, 8],
            vec![2, 5, 3],
        ] {
            assert_partition(&dims);
        }
    }

    #[test]
    fn level_coefficient_count_matches_enumeration() {
        for dims in [vec![17], vec![5, 9], vec![4, 3, 7], vec![8, 8, 8]] {
            for &s in &level_strides(&dims) {
                let mut n = 0usize;
                for axis in 0..dims.len() {
                    for_each_point(&dims, axis, s, PointSet::Fine, |_, _| n += 1);
                }
                assert_eq!(n, level_coefficient_count(&dims, s), "dims {dims:?} s={s}");
            }
        }
    }

    #[test]
    fn total_coefficients_plus_root_equals_n() {
        for dims in [vec![100], vec![13, 22], vec![9, 9, 9]] {
            let n: usize = dims.iter().product();
            let total: usize = level_strides(&dims)
                .iter()
                .map(|&s| level_coefficient_count(&dims, s))
                .sum();
            assert_eq!(total + 1, n, "dims {dims:?}");
        }
    }

    #[test]
    fn coarse_enumeration_covers_2s_grid() {
        let dims = [8usize];
        let mut got = Vec::new();
        for_each_point(&dims, 0, 2, PointSet::Coarse, |idx, c| {
            got.push((idx, c));
        });
        assert_eq!(got, vec![(0, 0), (4, 4)]);
    }

    #[test]
    fn lines_enumerate_each_line_once_2d() {
        // axis 1 pass at s=2 on a 5×9 grid: lines indexed by coord0 ∈ {0,2,4}
        let dims = [5usize, 9];
        let mut bases = HashSet::new();
        for_each_line(&dims, 1, 2, |base| {
            assert!(bases.insert(base), "line {base} repeated");
        });
        assert_eq!(bases, HashSet::from([0usize, 18, 36]));
    }

    #[test]
    fn lines_axis0_pass_use_2s_on_later_axes() {
        // axis 0 pass at s=2 on a 5×9 grid: lines indexed by coord1 ∈ {0,4,8}
        let dims = [5usize, 9];
        let mut bases = Vec::new();
        for_each_line(&dims, 0, 2, |base| bases.push(base));
        assert_eq!(bases, vec![0, 4, 8]);
    }

    #[test]
    fn one_dimensional_single_line() {
        let mut count = 0;
        for_each_line(&[33], 0, 4, |base| {
            assert_eq!(base, 0);
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn fine_points_order_is_deterministic() {
        let dims = [4usize, 5];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for_each_point(&dims, 0, 1, PointSet::Fine, |i, _| a.push(i));
        for_each_point(&dims, 0, 1, PointSet::Fine, |i, _| b.push(i));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
