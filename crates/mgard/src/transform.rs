//! Multilevel decomposition and recomposition (both bases).
//!
//! Decomposition runs fine→coarse: at each level stride `s` (1, 2, 4, …) and
//! for each axis in *reverse* order, fine nodes are replaced by their
//! interpolation residual; with [`Basis::Orthogonal`] the coarse nodes of the
//! pass then receive the L2-projection correction. Recomposition runs the
//! exact mirror (coarse→fine, forward axis order, correction subtracted
//! before interpolation), so `recompose(decompose(x)) == x` up to float
//! round-off.

use crate::hierarchy::{for_each_line, for_each_point, level_strides, strides, PointSet};
use crate::projection::{load_vector, solve_mass_tridiagonal};

/// Decomposition basis (§V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Basis {
    /// Hierarchical basis — interpolation residuals only (PMGARD-HB).
    #[default]
    Hierarchical,
    /// Orthogonal basis — hierarchical + L2 projection (PMGARD/MGARD).
    Orthogonal,
}

impl Basis {
    /// Stable on-disk tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Basis::Hierarchical => 0,
            Basis::Orthogonal => 1,
        }
    }

    /// Inverse of [`Basis::tag`].
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Basis::Hierarchical),
            1 => Some(Basis::Orthogonal),
            _ => None,
        }
    }
}

/// In-place multilevel decomposition of a row-major array.
///
/// On return, `data[0]` holds the root nodal value and every other entry
/// holds the multilevel coefficient of its (level, axis) fine set.
pub fn decompose(data: &mut [f64], dims: &[usize], basis: Basis) {
    let n: usize = dims.iter().product();
    assert_eq!(data.len(), n, "shape mismatch");
    let st = strides(dims);
    for &s in &level_strides(dims) {
        for axis in (0..dims.len()).rev() {
            if s >= dims[axis] {
                continue;
            }
            axis_decompose(data, dims, &st, axis, s);
            if basis == Basis::Orthogonal {
                apply_correction(data, dims, &st, axis, s, 1.0);
            }
        }
    }
}

/// In-place recomposition — the exact inverse of [`decompose`].
pub fn recompose(data: &mut [f64], dims: &[usize], basis: Basis) {
    let n: usize = dims.iter().product();
    assert_eq!(data.len(), n, "shape mismatch");
    let st = strides(dims);
    for &s in level_strides(dims).iter().rev() {
        for axis in 0..dims.len() {
            if s >= dims[axis] {
                continue;
            }
            if basis == Basis::Orthogonal {
                apply_correction(data, dims, &st, axis, s, -1.0);
            }
            axis_recompose(data, dims, &st, axis, s);
        }
    }
}

/// Fine-node residual pass: `coef = value − interp(coarse neighbours)`.
fn axis_decompose(data: &mut [f64], dims: &[usize], st: &[usize], axis: usize, s: usize) {
    let dim = dims[axis];
    let stride = st[axis];
    for_each_point(dims, axis, s, PointSet::Fine, |idx, c| {
        let pred = interp(data, dim, stride, idx, c, s);
        data[idx] -= pred;
    });
}

/// Inverse fine-node pass: `value = interp(coarse neighbours) + coef`.
fn axis_recompose(data: &mut [f64], dims: &[usize], st: &[usize], axis: usize, s: usize) {
    let dim = dims[axis];
    let stride = st[axis];
    for_each_point(dims, axis, s, PointSet::Fine, |idx, c| {
        let pred = interp(data, dim, stride, idx, c, s);
        data[idx] += pred;
    });
}

/// Linear interpolation from the two coarse neighbours along the axis
/// (left copy at the right edge). A convex combination — amplification ≤ 1,
/// the fact behind the tight HB error estimate.
#[inline]
fn interp(data: &[f64], dim: usize, stride: usize, idx: usize, c: usize, s: usize) -> f64 {
    let left = data[idx - s * stride];
    if c + s < dim {
        0.5 * (left + data[idx + s * stride])
    } else {
        left
    }
}

/// Applies `sign · w` to the coarse nodes of the (axis, s) pass, where `w`
/// solves the per-line mass system built from the pass's fine coefficients.
fn apply_correction(
    data: &mut [f64],
    dims: &[usize],
    st: &[usize],
    axis: usize,
    s: usize,
    sign: f64,
) {
    let dim = dims[axis];
    let stride = st[axis];
    // coarse positions: 0, 2s, …; fine positions: s, 3s, …
    let n_coarse = (dim - 1) / (2 * s) + 1;
    let n_fine = if s >= dim {
        0
    } else {
        (dim - 1 - s) / (2 * s) + 1
    };
    if n_fine == 0 {
        return;
    }
    for_each_line(dims, axis, s, |base| {
        let mut w = load_vector(n_coarse, n_fine, |k| data[base + (s + 2 * s * k) * stride]);
        solve_mass_tridiagonal(&mut w);
        for (j, wj) in w.iter().enumerate() {
            data[base + 2 * s * j * stride] += sign * wj;
        }
    });
}

/// Gathers the coefficients of the level with stride `s` into a vector, in
/// the canonical (axis-ascending, odometer) order used everywhere.
pub fn gather_level(data: &[f64], dims: &[usize], s: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for axis in 0..dims.len() {
        if s >= dims[axis] {
            continue;
        }
        for_each_point(dims, axis, s, PointSet::Fine, |idx, _| {
            out.push(data[idx]);
        });
    }
    out
}

/// Scatters a level's coefficients back into their array positions —
/// the inverse of [`gather_level`].
pub fn scatter_level(data: &mut [f64], dims: &[usize], s: usize, coeffs: &[f64]) {
    let mut i = 0usize;
    for axis in 0..dims.len() {
        if s >= dims[axis] {
            continue;
        }
        for_each_point(dims, axis, s, PointSet::Fine, |idx, _| {
            data[idx] = coeffs[i];
            i += 1;
        });
    }
    debug_assert_eq!(i, coeffs.len(), "coefficient count mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_util::stats::max_abs_diff;

    fn wavy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.01;
                (x * 3.0).sin() + 0.2 * (x * 11.0).cos() + 0.5 * x
            })
            .collect()
    }

    fn wavy_nd(dims: &[usize]) -> Vec<f64> {
        let n: usize = dims.iter().product();
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.37;
                (x * 0.1).sin() + ((i % 17) as f64) * 0.01
            })
            .collect()
    }

    #[test]
    fn decompose_recompose_identity_1d() {
        for n in [1usize, 2, 3, 16, 17, 100, 1025] {
            for basis in [Basis::Hierarchical, Basis::Orthogonal] {
                let orig = wavy(n);
                let mut v = orig.clone();
                decompose(&mut v, &[n], basis);
                recompose(&mut v, &[n], basis);
                let err = max_abs_diff(&orig, &v);
                assert!(err < 1e-11, "n={n} {basis:?}: err {err}");
            }
        }
    }

    #[test]
    fn decompose_recompose_identity_nd() {
        for dims in [vec![5usize, 9], vec![16, 16], vec![4, 3, 7], vec![8, 9, 10]] {
            for basis in [Basis::Hierarchical, Basis::Orthogonal] {
                let orig = wavy_nd(&dims);
                let mut v = orig.clone();
                decompose(&mut v, &dims, basis);
                recompose(&mut v, &dims, basis);
                let err = max_abs_diff(&orig, &v);
                assert!(err < 1e-10, "dims {dims:?} {basis:?}: err {err}");
            }
        }
    }

    #[test]
    fn smooth_data_coefficients_decay_by_level() {
        // For a smooth function, finer levels must have smaller coefficients
        // (the whole point of multilevel decorrelation).
        let n = 1025;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 / 200.0).sin()).collect();
        let mut v = data.clone();
        decompose(&mut v, &[n], Basis::Hierarchical);
        let levels = level_strides(&[n]);
        let max_at = |s: usize| {
            gather_level(&v, &[n], s)
                .iter()
                .fold(0.0f64, |m, c| m.max(c.abs()))
        };
        // finest vs coarsest: several orders of magnitude apart
        let fine = max_at(levels[0]);
        let coarse = max_at(*levels.last().unwrap());
        assert!(
            fine * 100.0 < coarse,
            "no decay: fine {fine}, coarse {coarse}"
        );
    }

    #[test]
    fn hierarchical_coefficient_perturbation_error_bounded() {
        // Perturb every coefficient of every level by ±e_l and verify the
        // reconstruction error stays below d·Σ e_l — the HB estimator claim.
        let dims = [33usize, 17];
        let orig = wavy_nd(&dims);
        let mut v = orig.clone();
        decompose(&mut v, &dims, Basis::Hierarchical);

        let levels = level_strides(&dims);
        let mut budget = 0.0;
        let mut rng = 0xabcdef12u64;
        for (li, &s) in levels.iter().enumerate() {
            let e = 1e-4 / (li + 1) as f64;
            budget += 2.0 * e; // d = 2 axes
            let mut coeffs = gather_level(&v, &dims, s);
            for c in &mut coeffs {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let delta = (rng as f64 / u64::MAX as f64) * 2.0 - 1.0;
                *c += e * delta;
            }
            scatter_level(&mut v, &dims, s, &coeffs);
        }
        recompose(&mut v, &dims, Basis::Hierarchical);
        let err = max_abs_diff(&orig, &v);
        assert!(err <= budget, "err {err} exceeds HB budget {budget}");
    }

    #[test]
    fn orthogonal_perturbation_error_within_conservative_model() {
        // Same experiment for OB: the error must stay below the κ-compounded
        // model of error_est (checked there too; here a coarse sanity factor).
        let dims = [65usize];
        let orig = wavy(65);
        let mut v = orig.clone();
        decompose(&mut v, &dims, Basis::Orthogonal);
        let levels = level_strides(&dims);
        let e = 1e-5;
        for &s in &levels {
            let mut coeffs = gather_level(&v, &dims, s);
            for c in &mut coeffs {
                *c += e;
            }
            scatter_level(&mut v, &dims, s, &coeffs);
        }
        recompose(&mut v, &dims, Basis::Orthogonal);
        let err = max_abs_diff(&orig, &v);
        // honest propagation bound: (1+κ)·e per level (1-D)
        let honest: f64 = crate::error_est::OB_PASS * e * levels.len() as f64;
        assert!(err <= honest, "err {err} exceeds honest OB bound {honest}");
        // and therefore below the κ-compounded guaranteed model too
        let model = crate::error_est::recon_bound(Basis::Orthogonal, &dims, &vec![e; levels.len()]);
        assert!(err <= model, "err {err} exceeds OB model {model}");
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let dims = [7usize, 5];
        let mut v = wavy_nd(&dims);
        let before = v.clone();
        for &s in &level_strides(&dims) {
            let coeffs = gather_level(&v, &dims, s);
            scatter_level(&mut v, &dims, s, &coeffs);
        }
        assert_eq!(before, v);
    }

    #[test]
    fn basis_tag_roundtrip() {
        for b in [Basis::Hierarchical, Basis::Orthogonal] {
            assert_eq!(Basis::from_tag(b.tag()), Some(b));
        }
        assert_eq!(Basis::from_tag(7), None);
    }

    #[test]
    fn single_point_array_is_identity() {
        let mut v = vec![42.0];
        decompose(&mut v, &[1], Basis::Orthogonal);
        assert_eq!(v, vec![42.0]);
        recompose(&mut v, &[1], Basis::Orthogonal);
        assert_eq!(v, vec![42.0]);
    }

    #[test]
    fn ob_differs_from_hb_on_coarse_values() {
        let n = 65;
        let data = wavy(n);
        let mut hb = data.clone();
        let mut ob = data.clone();
        decompose(&mut hb, &[n], Basis::Hierarchical);
        decompose(&mut ob, &[n], Basis::Orthogonal);
        assert!(
            (hb[0] - ob[0]).abs() > 1e-12,
            "L2 projection should move the root value"
        );
    }
}
