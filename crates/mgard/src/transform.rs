//! Multilevel decomposition and recomposition (both bases).
//!
//! Decomposition runs fine→coarse: at each level stride `s` (1, 2, 4, …) and
//! for each axis in *reverse* order, fine nodes are replaced by their
//! interpolation residual; with [`Basis::Orthogonal`] the coarse nodes of the
//! pass then receive the L2-projection correction. Recomposition runs the
//! exact mirror (coarse→fine, forward axis order, correction subtracted
//! before interpolation), so `recompose(decompose(x)) == x` up to float
//! round-off.

use crate::hierarchy::{for_each_line, for_each_point, level_strides, strides, PointSet};
use crate::projection::{load_vector, solve_mass_tridiagonal};
use pqr_util::bitplane_simd::scalar_kernels;
use pqr_util::par::{par_dynamic, par_dynamic_mut};

/// Decomposition basis (§V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Basis {
    /// Hierarchical basis — interpolation residuals only (PMGARD-HB).
    #[default]
    Hierarchical,
    /// Orthogonal basis — hierarchical + L2 projection (PMGARD/MGARD).
    Orthogonal,
}

impl Basis {
    /// Stable on-disk tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Basis::Hierarchical => 0,
            Basis::Orthogonal => 1,
        }
    }

    /// Inverse of [`Basis::tag`].
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Basis::Hierarchical),
            1 => Some(Basis::Orthogonal),
            _ => None,
        }
    }
}

/// In-place multilevel decomposition of a row-major array.
///
/// On return, `data[0]` holds the root nodal value and every other entry
/// holds the multilevel coefficient of its (level, axis) fine set.
pub fn decompose(data: &mut [f64], dims: &[usize], basis: Basis) {
    decompose_with_workers(data, dims, basis, 1);
}

/// In-place recomposition — the exact inverse of [`decompose`].
pub fn recompose(data: &mut [f64], dims: &[usize], basis: Basis) {
    recompose_with_workers(data, dims, basis, 1);
}

/// [`decompose`] with every axis pass fanned across `workers` threads.
///
/// Each pass operates on independent 1-D pencils: the interpolation pass
/// writes only fine nodes from (unwritten) coarse neighbours, and the L2
/// correction writes only coarse nodes from per-line solves, so the array is
/// split into disjoint slabs (plus one copied halo row per slab boundary)
/// and every written value is computed by exactly the serial arithmetic —
/// bit-identical to `workers == 1` by construction. `workers <= 1`, small
/// passes, and `PQR_SCALAR_KERNELS=1` take the scalar serial loops verbatim.
///
/// Returns the number of axis passes (interpolation + correction) executed.
pub fn decompose_with_workers(
    data: &mut [f64],
    dims: &[usize],
    basis: Basis,
    workers: usize,
) -> u64 {
    let n: usize = dims.iter().product();
    assert_eq!(data.len(), n, "shape mismatch");
    let st = strides(dims);
    let workers = effective_workers(workers);
    let mut passes = 0u64;
    for &s in &level_strides(dims) {
        for axis in (0..dims.len()).rev() {
            if s >= dims[axis] {
                continue;
            }
            interp_pass(data, dims, &st, axis, s, false, workers);
            passes += 1;
            if basis == Basis::Orthogonal {
                correction_pass(data, dims, &st, axis, s, 1.0, workers);
                passes += 1;
            }
        }
    }
    passes
}

/// [`recompose`] with every axis pass fanned across `workers` threads —
/// same slab/halo scheme (and the same bit-identical guarantee) as
/// [`decompose_with_workers`]. Returns the number of axis passes executed.
pub fn recompose_with_workers(
    data: &mut [f64],
    dims: &[usize],
    basis: Basis,
    workers: usize,
) -> u64 {
    let n: usize = dims.iter().product();
    assert_eq!(data.len(), n, "shape mismatch");
    let st = strides(dims);
    let workers = effective_workers(workers);
    let mut passes = 0u64;
    for &s in level_strides(dims).iter().rev() {
        for axis in 0..dims.len() {
            if s >= dims[axis] {
                continue;
            }
            if basis == Basis::Orthogonal {
                correction_pass(data, dims, &st, axis, s, -1.0, workers);
                passes += 1;
            }
            interp_pass(data, dims, &st, axis, s, true, workers);
            passes += 1;
        }
    }
    passes
}

/// Worker count after the global scalar-kernel override: `PQR_SCALAR_KERNELS`
/// pins every pass to the serial oracle (the cross-check harness flips it).
fn effective_workers(workers: usize) -> usize {
    if scalar_kernels() {
        1
    } else {
        workers.max(1)
    }
}

/// Points a parallel pass must touch before thread fan-out pays for itself.
const PAR_PASS_MIN: usize = 4096;

/// Fine-node count of the `(axis, s)` pass — the parallel-dispatch guard.
fn pass_points(dims: &[usize], axis: usize, s: usize) -> usize {
    let mut p = (dims[axis] - 1 - s) / (2 * s) + 1;
    for (a, &d) in dims.iter().enumerate() {
        if a == axis {
            continue;
        }
        let step = if a < axis { s } else { 2 * s };
        p *= (d - 1) / step + 1;
    }
    p
}

/// Fine-node residual pass: `coef = value − interp(coarse neighbours)`.
fn axis_decompose(data: &mut [f64], dims: &[usize], st: &[usize], axis: usize, s: usize) {
    let dim = dims[axis];
    let stride = st[axis];
    for_each_point(dims, axis, s, PointSet::Fine, |idx, c| {
        let pred = interp(data, dim, stride, idx, c, s);
        data[idx] -= pred;
    });
}

/// Inverse fine-node pass: `value = interp(coarse neighbours) + coef`.
fn axis_recompose(data: &mut [f64], dims: &[usize], st: &[usize], axis: usize, s: usize) {
    let dim = dims[axis];
    let stride = st[axis];
    for_each_point(dims, axis, s, PointSet::Fine, |idx, c| {
        let pred = interp(data, dim, stride, idx, c, s);
        data[idx] += pred;
    });
}

/// Linear interpolation from the two coarse neighbours along the axis
/// (left copy at the right edge). A convex combination — amplification ≤ 1,
/// the fact behind the tight HB error estimate.
#[inline]
fn interp(data: &[f64], dim: usize, stride: usize, idx: usize, c: usize, s: usize) -> f64 {
    let left = data[idx - s * stride];
    if c + s < dim {
        0.5 * (left + data[idx + s * stride])
    } else {
        left
    }
}

/// Applies `sign · w` to the coarse nodes of the (axis, s) pass, where `w`
/// solves the per-line mass system built from the pass's fine coefficients.
fn apply_correction(
    data: &mut [f64],
    dims: &[usize],
    st: &[usize],
    axis: usize,
    s: usize,
    sign: f64,
) {
    let dim = dims[axis];
    let stride = st[axis];
    // coarse positions: 0, 2s, …; fine positions: s, 3s, …
    let n_coarse = (dim - 1) / (2 * s) + 1;
    let n_fine = if s >= dim {
        0
    } else {
        (dim - 1 - s) / (2 * s) + 1
    };
    if n_fine == 0 {
        return;
    }
    for_each_line(dims, axis, s, |base| {
        let mut w = load_vector(n_coarse, n_fine, |k| data[base + (s + 2 * s * k) * stride]);
        solve_mass_tridiagonal(&mut w);
        for (j, wj) in w.iter().enumerate() {
            data[base + 2 * s * j * stride] += sign * wj;
        }
    });
}

/// One interpolation pass, parallel when it pays: `add == false` is the
/// decompose residual (`value -= interp`), `add == true` the recompose
/// inverse (`value += interp`).
fn interp_pass(
    data: &mut [f64],
    dims: &[usize],
    st: &[usize],
    axis: usize,
    s: usize,
    add: bool,
    workers: usize,
) {
    if workers <= 1 || pass_points(dims, axis, s) < PAR_PASS_MIN {
        if add {
            axis_recompose(data, dims, st, axis, s);
        } else {
            axis_decompose(data, dims, st, axis, s);
        }
        return;
    }
    par_interp_pass(data, dims, st, axis, s, add, workers);
}

/// One slab of a parallel pass: its disjoint slice, first row index along
/// the active axis, and the copied halo row (the next slab's first row).
type SlabJob<'a> = (&'a mut [f64], usize, Option<Vec<f64>>);

/// Pencil-parallel interpolation pass.
///
/// The pass's index space factors as `prefix + f·stride + suffix`: prefixes
/// enumerate the (already refined, step `s`) axes before `axis`, suffixes
/// the (step `2s`) axes after it, and `f` walks the active axis. Each prefix
/// owns the contiguous block `[P, P + dim·stride)`, which is cut into slabs
/// at coarse-row boundaries (`f ≡ 0 mod 2s`). A fine row `f` reads only the
/// coarse rows `f ± s` — never another fine row — so the single cross-slab
/// read (`f + s` landing on the next slab's first row) is satisfied by a
/// halo copy taken before any write. Every written value therefore sees
/// exactly the operands the serial pass sees: bit-identical by construction.
/// Slabs double as cache blocking for non-contiguous axes — each job walks
/// a bounded contiguous window instead of striding across the whole field.
fn par_interp_pass(
    data: &mut [f64],
    dims: &[usize],
    st: &[usize],
    axis: usize,
    s: usize,
    add: bool,
    workers: usize,
) {
    let dim = dims[axis];
    let stride = st[axis];
    let prefixes = grid_offsets(dims, st, 0, axis, s);
    let suffixes = grid_offsets(dims, st, axis + 1, dims.len(), 2 * s);
    // slab height in rows along the axis: a multiple of 2s sized for a few
    // slabs per worker across all blocks
    let coarse_rows = (dim - 1) / (2 * s) + 1;
    let target = (workers * 4).div_ceil(prefixes.len()).max(1);
    let span = coarse_rows.div_ceil(target).max(1) * 2 * s;

    // (start, len, first_row) of every slab, ascending by start
    let mut spec: Vec<(usize, usize, usize)> = Vec::new();
    for &p in &prefixes {
        let mut f0 = 0usize;
        while f0 < dim {
            let f1 = (f0 + span).min(dim);
            spec.push((p + f0 * stride, (f1 - f0) * stride, f0));
            f0 = f1;
        }
    }
    // halo: the first (coarse) row of the next slab, copied before any write
    let halos: Vec<Option<Vec<f64>>> = spec
        .iter()
        .map(|&(start, len, f0)| {
            let f1 = f0 + len / stride;
            (f1 < dim).then(|| data[start + len..start + len + stride].to_vec())
        })
        .collect();
    // carve the disjoint slab slices (skipping inter-block gaps when s > 1)
    let mut jobs: Vec<SlabJob> = Vec::with_capacity(spec.len());
    let mut rest: &mut [f64] = data;
    let mut pos = 0usize;
    for (&(start, len, f0), halo) in spec.iter().zip(halos) {
        let r = std::mem::take(&mut rest);
        let (_gap, r) = r.split_at_mut(start - pos);
        let (slab, tail) = r.split_at_mut(len);
        jobs.push((slab, f0, halo));
        rest = tail;
        pos = start + len;
    }
    par_dynamic_mut(&mut jobs, workers, |_, job| {
        let (slab, f0, halo) = job;
        let f1 = *f0 + slab.len() / stride;
        let mut f = *f0 + s;
        while f < f1 {
            let row = (f - *f0) * stride;
            for &u in &suffixes {
                let i = row + u;
                let left = slab[i - s * stride];
                let pred = if f + s < dim {
                    let right = if f + s < f1 {
                        slab[i + s * stride]
                    } else {
                        halo.as_ref().expect("slab boundary halo")[u]
                    };
                    0.5 * (left + right)
                } else {
                    left
                };
                if add {
                    slab[i] += pred;
                } else {
                    slab[i] -= pred;
                }
            }
            f += 2 * s;
        }
    });
}

/// One L2-correction pass, parallel when it pays: the per-line gather +
/// tridiagonal solve fans across workers over a read-only borrow (fine
/// coefficients are never written by this pass), then a serial scatter adds
/// each line's solved correction to its disjoint coarse nodes — the same
/// per-line arithmetic, in the same within-line order, as the serial pass.
fn correction_pass(
    data: &mut [f64],
    dims: &[usize],
    st: &[usize],
    axis: usize,
    s: usize,
    sign: f64,
    workers: usize,
) {
    if workers <= 1 || pass_points(dims, axis, s) < PAR_PASS_MIN {
        apply_correction(data, dims, st, axis, s, sign);
        return;
    }
    let dim = dims[axis];
    let stride = st[axis];
    let n_coarse = (dim - 1) / (2 * s) + 1;
    let n_fine = (dim - 1 - s) / (2 * s) + 1;
    let mut bases = Vec::new();
    for_each_line(dims, axis, s, |base| bases.push(base));
    let shared: &[f64] = data;
    let solved = par_dynamic(bases.len(), workers, |i| {
        let base = bases[i];
        let mut w = load_vector(n_coarse, n_fine, |k| {
            shared[base + (s + 2 * s * k) * stride]
        });
        solve_mass_tridiagonal(&mut w);
        w
    });
    for (&base, w) in bases.iter().zip(&solved) {
        for (j, wj) in w.iter().enumerate() {
            data[base + 2 * s * j * stride] += sign * wj;
        }
    }
}

/// Ascending flat offsets of the odometer over axes `lo..hi`, stepping by
/// `step` coordinates per axis (an empty range yields the single offset 0).
fn grid_offsets(dims: &[usize], st: &[usize], lo: usize, hi: usize, step: usize) -> Vec<usize> {
    let mut out = vec![0usize];
    for a in lo..hi {
        let count = (dims[a] - 1) / step + 1;
        let mut next = Vec::with_capacity(out.len() * count);
        for &o in &out {
            for k in 0..count {
                next.push(o + k * step * st[a]);
            }
        }
        out = next;
    }
    out
}

/// Gathers the coefficients of the level with stride `s` into a vector, in
/// the canonical (axis-ascending, odometer) order used everywhere.
pub fn gather_level(data: &[f64], dims: &[usize], s: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for axis in 0..dims.len() {
        if s >= dims[axis] {
            continue;
        }
        for_each_point(dims, axis, s, PointSet::Fine, |idx, _| {
            out.push(data[idx]);
        });
    }
    out
}

/// Scatters a level's coefficients back into their array positions —
/// the inverse of [`gather_level`].
pub fn scatter_level(data: &mut [f64], dims: &[usize], s: usize, coeffs: &[f64]) {
    let mut i = 0usize;
    for axis in 0..dims.len() {
        if s >= dims[axis] {
            continue;
        }
        for_each_point(dims, axis, s, PointSet::Fine, |idx, _| {
            data[idx] = coeffs[i];
            i += 1;
        });
    }
    debug_assert_eq!(i, coeffs.len(), "coefficient count mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_util::stats::max_abs_diff;

    fn wavy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.01;
                (x * 3.0).sin() + 0.2 * (x * 11.0).cos() + 0.5 * x
            })
            .collect()
    }

    fn wavy_nd(dims: &[usize]) -> Vec<f64> {
        let n: usize = dims.iter().product();
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.37;
                (x * 0.1).sin() + ((i % 17) as f64) * 0.01
            })
            .collect()
    }

    #[test]
    fn decompose_recompose_identity_1d() {
        for n in [1usize, 2, 3, 16, 17, 100, 1025] {
            for basis in [Basis::Hierarchical, Basis::Orthogonal] {
                let orig = wavy(n);
                let mut v = orig.clone();
                decompose(&mut v, &[n], basis);
                recompose(&mut v, &[n], basis);
                let err = max_abs_diff(&orig, &v);
                assert!(err < 1e-11, "n={n} {basis:?}: err {err}");
            }
        }
    }

    #[test]
    fn decompose_recompose_identity_nd() {
        for dims in [vec![5usize, 9], vec![16, 16], vec![4, 3, 7], vec![8, 9, 10]] {
            for basis in [Basis::Hierarchical, Basis::Orthogonal] {
                let orig = wavy_nd(&dims);
                let mut v = orig.clone();
                decompose(&mut v, &dims, basis);
                recompose(&mut v, &dims, basis);
                let err = max_abs_diff(&orig, &v);
                assert!(err < 1e-10, "dims {dims:?} {basis:?}: err {err}");
            }
        }
    }

    #[test]
    fn smooth_data_coefficients_decay_by_level() {
        // For a smooth function, finer levels must have smaller coefficients
        // (the whole point of multilevel decorrelation).
        let n = 1025;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 / 200.0).sin()).collect();
        let mut v = data.clone();
        decompose(&mut v, &[n], Basis::Hierarchical);
        let levels = level_strides(&[n]);
        let max_at = |s: usize| {
            gather_level(&v, &[n], s)
                .iter()
                .fold(0.0f64, |m, c| m.max(c.abs()))
        };
        // finest vs coarsest: several orders of magnitude apart
        let fine = max_at(levels[0]);
        let coarse = max_at(*levels.last().unwrap());
        assert!(
            fine * 100.0 < coarse,
            "no decay: fine {fine}, coarse {coarse}"
        );
    }

    #[test]
    fn hierarchical_coefficient_perturbation_error_bounded() {
        // Perturb every coefficient of every level by ±e_l and verify the
        // reconstruction error stays below d·Σ e_l — the HB estimator claim.
        let dims = [33usize, 17];
        let orig = wavy_nd(&dims);
        let mut v = orig.clone();
        decompose(&mut v, &dims, Basis::Hierarchical);

        let levels = level_strides(&dims);
        let mut budget = 0.0;
        let mut rng = 0xabcdef12u64;
        for (li, &s) in levels.iter().enumerate() {
            let e = 1e-4 / (li + 1) as f64;
            budget += 2.0 * e; // d = 2 axes
            let mut coeffs = gather_level(&v, &dims, s);
            for c in &mut coeffs {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let delta = (rng as f64 / u64::MAX as f64) * 2.0 - 1.0;
                *c += e * delta;
            }
            scatter_level(&mut v, &dims, s, &coeffs);
        }
        recompose(&mut v, &dims, Basis::Hierarchical);
        let err = max_abs_diff(&orig, &v);
        assert!(err <= budget, "err {err} exceeds HB budget {budget}");
    }

    #[test]
    fn orthogonal_perturbation_error_within_conservative_model() {
        // Same experiment for OB: the error must stay below the κ-compounded
        // model of error_est (checked there too; here a coarse sanity factor).
        let dims = [65usize];
        let orig = wavy(65);
        let mut v = orig.clone();
        decompose(&mut v, &dims, Basis::Orthogonal);
        let levels = level_strides(&dims);
        let e = 1e-5;
        for &s in &levels {
            let mut coeffs = gather_level(&v, &dims, s);
            for c in &mut coeffs {
                *c += e;
            }
            scatter_level(&mut v, &dims, s, &coeffs);
        }
        recompose(&mut v, &dims, Basis::Orthogonal);
        let err = max_abs_diff(&orig, &v);
        // honest propagation bound: (1+κ)·e per level (1-D)
        let honest: f64 = crate::error_est::OB_PASS * e * levels.len() as f64;
        assert!(err <= honest, "err {err} exceeds honest OB bound {honest}");
        // and therefore below the κ-compounded guaranteed model too
        let model = crate::error_est::recon_bound(Basis::Orthogonal, &dims, &vec![e; levels.len()]);
        assert!(err <= model, "err {err} exceeds OB model {model}");
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let dims = [7usize, 5];
        let mut v = wavy_nd(&dims);
        let before = v.clone();
        for &s in &level_strides(&dims) {
            let coeffs = gather_level(&v, &dims, s);
            scatter_level(&mut v, &dims, s, &coeffs);
        }
        assert_eq!(before, v);
    }

    #[test]
    fn basis_tag_roundtrip() {
        for b in [Basis::Hierarchical, Basis::Orthogonal] {
            assert_eq!(Basis::from_tag(b.tag()), Some(b));
        }
        assert_eq!(Basis::from_tag(7), None);
    }

    #[test]
    fn single_point_array_is_identity() {
        let mut v = vec![42.0];
        decompose(&mut v, &[1], Basis::Orthogonal);
        assert_eq!(v, vec![42.0]);
        recompose(&mut v, &[1], Basis::Orthogonal);
        assert_eq!(v, vec![42.0]);
    }

    #[test]
    fn ob_differs_from_hb_on_coarse_values() {
        let n = 65;
        let data = wavy(n);
        let mut hb = data.clone();
        let mut ob = data.clone();
        decompose(&mut hb, &[n], Basis::Hierarchical);
        decompose(&mut ob, &[n], Basis::Orthogonal);
        assert!(
            (hb[0] - ob[0]).abs() > 1e-12,
            "L2 projection should move the root value"
        );
    }
}
