//! Refactoring: decompose → per-level bitplane segments + metadata.

use crate::bitplane::{encode_level, encode_level_scalar, EncodedLevel, PLANES};
use crate::hierarchy::{level_coefficient_count, level_strides};
use crate::retrieve::MgardReader;
use crate::transform::{decompose_with_workers, gather_level, Basis};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};

/// Magic bytes identifying a pqr-mgard stream.
const MAGIC: &[u8; 4] = b"PQMG";
/// Format version.
const VERSION: u8 = 1;

/// Produces progressive multilevel streams (PMGARD / PMGARD-HB refactoring,
/// Algorithm 1's `refactor` for this representation).
#[derive(Debug, Clone, Copy, Default)]
pub struct MgardRefactorer {
    basis: Basis,
}

impl MgardRefactorer {
    /// Creates a refactorer with the given decomposition basis.
    pub fn new(basis: Basis) -> Self {
        Self { basis }
    }

    /// The basis in use.
    pub fn basis(&self) -> Basis {
        self.basis
    }

    /// Refactors a row-major array into a progressive multilevel stream.
    pub fn refactor(&self, data: &[f64], dims: &[usize]) -> Result<MgardStream> {
        self.refactor_with_workers(data, dims, 1)
    }

    /// [`MgardRefactorer::refactor`] pinned to the scalar reference plane
    /// encoder regardless of `PQR_SCALAR_KERNELS` — the oracle the
    /// word-parallel and parallel-worker encodes are property-tested
    /// against.
    pub fn refactor_scalar(&self, data: &[f64], dims: &[usize]) -> Result<MgardStream> {
        self.refactor_impl(data, dims, 1, true)
    }

    /// [`MgardRefactorer::refactor`] with both stages fanned out to
    /// `workers` threads (1 = exactly the serial loop): the decomposition's
    /// axis passes run pencil-parallel (levels depend on each other, but
    /// the lines within a pass do not — and the parallel passes are
    /// bit-identical to serial), and each level's bitplane encode is
    /// independent, so the stream is byte-identical at any worker count.
    pub fn refactor_with_workers(
        &self,
        data: &[f64],
        dims: &[usize],
        workers: usize,
    ) -> Result<MgardStream> {
        self.refactor_impl(data, dims, workers, false)
    }

    fn refactor_impl(
        &self,
        data: &[f64],
        dims: &[usize],
        workers: usize,
        scalar: bool,
    ) -> Result<MgardStream> {
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "dims {:?} = {n} elements, data has {}",
                dims,
                data.len()
            )));
        }
        if n == 0 {
            return Ok(MgardStream {
                basis: self.basis,
                dims: dims.to_vec(),
                root: 0.0,
                levels: Vec::new(),
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(PqrError::InvalidRequest(
                "multilevel refactoring requires finite data (mask specials first)".into(),
            ));
        }
        let mut work = data.to_vec();
        // the pencil-parallel passes are bit-identical to serial, so the
        // stream stays byte-identical at any worker count; the scalar
        // cross-check path pins workers to 1 (the serial oracle)
        decompose_with_workers(
            &mut work,
            dims,
            self.basis,
            if scalar { 1 } else { workers },
        );
        let root = work[0];
        let strides = level_strides(dims);
        let levels = if scalar {
            strides
                .iter()
                .map(|&s| encode_level_scalar(&gather_level(&work, dims, s)))
                .collect()
        } else {
            pqr_util::par::par_dynamic(strides.len(), workers, |l| {
                encode_level(&gather_level(&work, dims, strides[l]))
            })
        };
        Ok(MgardStream {
            basis: self.basis,
            dims: dims.to_vec(),
            root,
            levels,
        })
    }
}

/// A refactored multilevel stream: metadata + per-(level, plane) segments.
///
/// The stream is the archive-side artifact; [`MgardStream::reader`] opens a
/// progressive reader that fetches segments on demand and accounts for the
/// bytes a remote retrieval would move.
#[derive(Debug, Clone)]
pub struct MgardStream {
    pub(crate) basis: Basis,
    pub(crate) dims: Vec<usize>,
    pub(crate) root: f64,
    /// Finest level first (index `l` ↔ stride `2^l`).
    pub(crate) levels: Vec<EncodedLevel>,
}

/// Everything a decoder must hold *before* any plane payload arrives:
/// basis, shape, root value, and the per-level structure (exponent,
/// coefficient count, number of stored planes). This is the stream minus
/// its plane payloads — the unit a fragment-addressed store serves as the
/// field's metadata fragment, and what [`crate::retrieve::MgardCursor`]
/// decodes against while plane bytes are pushed in from elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct MgardMeta {
    pub(crate) basis: Basis,
    pub(crate) dims: Vec<usize>,
    pub(crate) root: f64,
    pub(crate) levels: Vec<LevelMeta>,
}

/// Per-level decode structure (see [`MgardMeta`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMeta {
    /// Level exponent (`None` for an all-zero level with no planes).
    pub exponent: Option<i32>,
    /// Coefficient count (fully determined by the shape; revalidated on
    /// parse).
    pub count: usize,
    /// Number of stored plane segments.
    pub num_planes: u32,
}

/// Magic bytes identifying a serialized [`MgardMeta`].
const META_MAGIC: &[u8; 4] = b"PQMM";

impl MgardMeta {
    /// The decomposition basis.
    pub fn basis(&self) -> Basis {
        self.basis
    }

    /// Array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of multilevel levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The root (coarsest) node value.
    pub fn root(&self) -> f64 {
        self.root
    }

    /// Per-level decode structure, finest level first.
    pub fn levels(&self) -> &[LevelMeta] {
        &self.levels
    }

    /// Per-level plane counts, finest level first.
    pub fn planes_per_level(&self) -> Vec<u32> {
        self.levels.iter().map(|l| l.num_planes).collect()
    }

    /// Total stored plane segments across levels.
    pub fn total_planes(&self) -> usize {
        self.levels.iter().map(|l| l.num_planes as usize).sum()
    }

    /// Serializes the metadata (the field's always-fetched fragment).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(META_MAGIC);
        w.put_u8(VERSION);
        w.put_u8(self.basis.tag());
        w.put_u8(self.dims.len() as u8);
        for &d in &self.dims {
            w.put_u64(d as u64);
        }
        w.put_f64(self.root);
        w.put_u32(self.levels.len() as u32);
        for lvl in &self.levels {
            match lvl.exponent {
                Some(e) => {
                    w.put_u8(1);
                    w.put_u32(e as u32);
                }
                None => {
                    w.put_u8(0);
                    w.put_u32(0);
                }
            }
            w.put_u64(lvl.count as u64);
            w.put_u32(lvl.num_planes);
        }
        w.finish()
    }

    /// Deserializes metadata, enforcing the same structural invariants as
    /// [`MgardStream::from_bytes`]: the level structure must match what the
    /// shape implies, or downstream decoding would panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4)? != META_MAGIC {
            return Err(PqrError::CorruptStream("bad mgard meta magic".into()));
        }
        if r.get_u8()? != VERSION {
            return Err(PqrError::CorruptStream("unsupported mgard meta".into()));
        }
        let basis = Basis::from_tag(r.get_u8()?)
            .ok_or_else(|| PqrError::CorruptStream("unknown basis".into()))?;
        let nd = r.get_u8()? as usize;
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        pqr_util::byteio::check_dims(&dims)?;
        let root = r.get_f64()?;
        let expected = level_strides(&dims);
        let nlevels = r.get_u32()? as usize;
        if nlevels != expected.len() {
            return Err(PqrError::CorruptStream(format!(
                "{nlevels} levels for dims {dims:?} (shape implies {})",
                expected.len()
            )));
        }
        let nlevels = r.check_count(nlevels, 17)?;
        let mut levels = Vec::with_capacity(nlevels);
        for &stride in &expected {
            let has_exp = r.get_u8()? != 0;
            let e = r.get_u32()? as i32;
            let exponent = has_exp.then_some(e);
            let count = r.get_u64()? as usize;
            let want = level_coefficient_count(&dims, stride);
            if count != want {
                return Err(PqrError::CorruptStream(format!(
                    "level stride {stride} declares {count} coefficients, shape implies {want}"
                )));
            }
            let num_planes = r.get_u32()?;
            if num_planes > PLANES {
                return Err(PqrError::CorruptStream(format!(
                    "plane count {num_planes} exceeds {PLANES}"
                )));
            }
            if exponent.is_none() && num_planes != 0 {
                return Err(PqrError::CorruptStream(
                    "all-zero level declares planes".into(),
                ));
            }
            levels.push(LevelMeta {
                exponent,
                count,
                num_planes,
            });
        }
        if r.remaining() != 0 {
            return Err(PqrError::CorruptStream("trailing mgard meta bytes".into()));
        }
        Ok(Self {
            basis,
            dims,
            root,
            levels,
        })
    }
}

impl MgardStream {
    /// The decomposition basis of this stream.
    pub fn basis(&self) -> Basis {
        self.basis
    }

    /// Array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Opens a progressive reader positioned at zero fetched planes.
    pub fn reader(&self) -> MgardReader<'_> {
        MgardReader::new(self)
    }

    /// The stream's metadata — everything except the plane payloads.
    pub fn meta(&self) -> MgardMeta {
        MgardMeta {
            basis: self.basis,
            dims: self.dims.clone(),
            root: self.root,
            levels: self
                .levels
                .iter()
                .map(|l| LevelMeta {
                    exponent: l.exponent,
                    count: l.count,
                    num_planes: l.planes.len() as u32,
                })
                .collect(),
        }
    }

    /// Reassembles a stream from metadata plus the plane payloads in
    /// storage order (level-major, MSB plane first within a level) — the
    /// inverse of splitting a stream into fragments.
    pub fn from_parts(meta: MgardMeta, mut planes: Vec<Vec<u8>>) -> Result<Self> {
        if planes.len() != meta.total_planes() {
            return Err(PqrError::CorruptStream(format!(
                "{} plane payloads for metadata declaring {}",
                planes.len(),
                meta.total_planes()
            )));
        }
        let mut levels = Vec::with_capacity(meta.levels.len());
        let mut rest = planes.drain(..);
        for lm in &meta.levels {
            levels.push(EncodedLevel {
                exponent: lm.exponent,
                count: lm.count,
                planes: rest.by_ref().take(lm.num_planes as usize).collect(),
            });
        }
        Ok(Self {
            basis: meta.basis,
            dims: meta.dims,
            root: meta.root,
            levels,
        })
    }

    /// Metadata bytes a retrieval must always move: header, shape, root,
    /// per-level exponents/counts and the per-plane size table.
    pub fn metadata_bytes(&self) -> usize {
        // magic + version + basis + nd + dims + root + level count
        let mut b = 4 + 1 + 1 + 1 + 8 * self.dims.len() + 8 + 4;
        for lvl in &self.levels {
            // exponent presence + exponent + count + plane count + sizes
            b += 1 + 4 + 8 + 4 + 4 * lvl.planes.len();
        }
        b
    }

    /// Per-plane payload sizes across all levels, finest level first —
    /// the individually fetchable segments after the metadata.
    pub fn segment_sizes(&self) -> Vec<usize> {
        self.levels
            .iter()
            .flat_map(|l| l.planes.iter().map(Vec::len))
            .collect()
    }

    /// The plane payloads in storage order (level-major, MSB plane first
    /// within a level) — the order [`MgardStream::from_parts`] reassembles.
    pub fn plane_payloads(&self) -> impl Iterator<Item = &[u8]> {
        self.levels
            .iter()
            .flat_map(|l| l.planes.iter().map(Vec::as_slice))
    }

    /// The `flat`-th plane payload in storage order (the
    /// [`MgardStream::plane_payloads`] order), addressed in O(levels).
    pub fn plane(&self, flat: usize) -> Option<&[u8]> {
        let mut k = flat;
        for l in &self.levels {
            if k < l.planes.len() {
                return Some(&l.planes[k]);
            }
            k -= l.planes.len();
        }
        None
    }

    /// Total archived size (metadata + all plane payloads).
    pub fn total_bytes(&self) -> usize {
        self.metadata_bytes()
            + self
                .levels
                .iter()
                .map(|l| l.planes.iter().map(Vec::len).sum::<usize>())
                .sum::<usize>()
    }

    /// Serializes the stream (archival format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.total_bytes() + 64);
        w.put_raw(MAGIC);
        w.put_u8(VERSION);
        w.put_u8(self.basis.tag());
        w.put_u8(self.dims.len() as u8);
        for &d in &self.dims {
            w.put_u64(d as u64);
        }
        w.put_f64(self.root);
        w.put_u32(self.levels.len() as u32);
        for lvl in &self.levels {
            match lvl.exponent {
                Some(e) => {
                    w.put_u8(1);
                    w.put_u32(e as u32);
                }
                None => {
                    w.put_u8(0);
                    w.put_u32(0);
                }
            }
            w.put_u64(lvl.count as u64);
            w.put_u32(lvl.planes.len() as u32);
            for p in &lvl.planes {
                w.put_u32(p.len() as u32);
                w.put_raw(p);
            }
        }
        w.finish()
    }

    /// Deserializes a stream from [`MgardStream::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4)? != MAGIC {
            return Err(PqrError::CorruptStream("bad magic".into()));
        }
        if r.get_u8()? != VERSION {
            return Err(PqrError::CorruptStream("unsupported version".into()));
        }
        let basis = Basis::from_tag(r.get_u8()?)
            .ok_or_else(|| PqrError::CorruptStream("unknown basis".into()))?;
        let nd = r.get_u8()? as usize;
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        pqr_util::byteio::check_dims(&dims)?;
        let root = r.get_f64()?;
        // The level structure is fully determined by the shape: the reader
        // indexes `decoders[l]` per stride and `scatter_level` trusts each
        // level's exact coefficient count, so a stream that disagrees with
        // `level_strides(dims)` would panic downstream — reject it here.
        let expected = level_strides(&dims);
        let nlevels = r.get_u32()? as usize;
        if nlevels != expected.len() {
            return Err(PqrError::CorruptStream(format!(
                "{nlevels} levels for dims {dims:?} (shape implies {})",
                expected.len()
            )));
        }
        let mut levels = Vec::with_capacity(nlevels);
        for &stride in &expected {
            let has_exp = r.get_u8()? != 0;
            let e = r.get_u32()? as i32;
            let exponent = has_exp.then_some(e);
            let count = r.get_u64()? as usize;
            let want = level_coefficient_count(&dims, stride);
            if count != want {
                return Err(PqrError::CorruptStream(format!(
                    "level stride {stride} declares {count} coefficients, shape implies {want}"
                )));
            }
            let nplanes = r.get_u32()? as usize;
            if nplanes > PLANES as usize {
                return Err(PqrError::CorruptStream(format!(
                    "plane count {nplanes} exceeds {PLANES}"
                )));
            }
            let mut planes = Vec::with_capacity(nplanes);
            for _ in 0..nplanes {
                let len = r.get_u32()? as usize;
                planes.push(r.get_raw(len)?.to_vec());
            }
            levels.push(EncodedLevel {
                exponent,
                count,
                planes,
            });
        }
        Ok(Self {
            basis,
            dims,
            root,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.002).sin() * 10.0 + (i as f64 * 0.05).cos())
            .collect()
    }

    #[test]
    fn refactor_produces_expected_level_count() {
        let data = field(1000);
        let s = MgardRefactorer::new(Basis::Hierarchical)
            .refactor(&data, &[1000])
            .unwrap();
        assert_eq!(s.num_levels(), 10); // strides 1..512
        assert_eq!(s.dims(), &[1000]);
    }

    #[test]
    fn serialization_roundtrip() {
        let data = field(257);
        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let s = MgardRefactorer::new(basis).refactor(&data, &[257]).unwrap();
            let bytes = s.to_bytes();
            let s2 = MgardStream::from_bytes(&bytes).unwrap();
            assert_eq!(s2.basis(), basis);
            assert_eq!(s2.dims(), s.dims());
            assert_eq!(s2.root, s.root);
            assert_eq!(s2.levels.len(), s.levels.len());
            for (a, b) in s.levels.iter().zip(&s2.levels) {
                assert_eq!(a.exponent, b.exponent);
                assert_eq!(a.count, b.count);
                assert_eq!(a.planes, b.planes);
            }
        }
    }

    #[test]
    fn metadata_accounting_consistent_with_serialization() {
        let data = field(500);
        let s = MgardRefactorer::default().refactor(&data, &[500]).unwrap();
        let serialized = s.to_bytes().len();
        // serialized = metadata + payloads (length prefixes counted as meta)
        let payloads: usize = s
            .levels
            .iter()
            .map(|l| l.planes.iter().map(Vec::len).sum::<usize>())
            .sum();
        assert_eq!(serialized, s.metadata_bytes() + payloads);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let r = MgardRefactorer::default();
        assert!(r.refactor(&[1.0, 2.0], &[3]).is_err());
    }

    #[test]
    fn non_finite_data_rejected() {
        let r = MgardRefactorer::default();
        assert!(r.refactor(&[1.0, f64::NAN], &[2]).is_err());
        assert!(r.refactor(&[1.0, f64::INFINITY], &[2]).is_err());
    }

    #[test]
    fn empty_array_ok() {
        let s = MgardRefactorer::default().refactor(&[], &[0]).unwrap();
        assert_eq!(s.num_levels(), 0);
        let bytes = s.to_bytes();
        let s2 = MgardStream::from_bytes(&bytes).unwrap();
        assert_eq!(s2.dims(), &[0]);
        // the degenerate stream must also be readable, not just parseable
        assert!(s2.reader().reconstruct().is_empty());
    }

    /// Builds stream bytes for dims `[16]` with the given level headers
    /// (`(count, nplanes)` per level, no plane payloads).
    fn crafted_stream(level_counts: &[(u64, u32)]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(MAGIC);
        w.put_u8(VERSION);
        w.put_u8(Basis::Hierarchical.tag());
        w.put_u8(1); // nd
        w.put_u64(16); // dim
        w.put_f64(0.0); // root
        w.put_u32(level_counts.len() as u32);
        for &(count, nplanes) in level_counts {
            w.put_u8(1); // has exponent
            w.put_u32(0); // exponent
            w.put_u64(count);
            w.put_u32(nplanes);
        }
        w.finish()
    }

    #[test]
    fn hostile_level_structure_rejected() {
        // The reader's decoders allocate `count` slots and `scatter_level`
        // trusts the exact per-level counts, so streams whose declared
        // structure disagrees with the shape must fail at parse time —
        // accepting them would turn `reader()`/`reconstruct()` into an
        // abort or an index panic.

        // u64::MAX coefficients in a single level (allocation bomb)
        assert!(MgardStream::from_bytes(&crafted_stream(&[(u64::MAX, 0)])).is_err());
        // too few levels for the shape ([16] implies strides 1,2,4,8)
        assert!(MgardStream::from_bytes(&crafted_stream(&[(5, 0)])).is_err());
        // right level count, one wrong coefficient count (true: 8,4,2,1)
        assert!(
            MgardStream::from_bytes(&crafted_stream(&[(8, 0), (5, 0), (2, 0), (1, 0)])).is_err()
        );
        // the structurally correct headers parse fine
        let ok = MgardStream::from_bytes(&crafted_stream(&[(8, 0), (4, 0), (2, 0), (1, 0)]));
        assert!(ok.is_ok(), "{ok:?}");
        // ...and the parsed stream is readable without panicking
        assert_eq!(ok.unwrap().reader().reconstruct().len(), 16);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let data = field(64);
        let s = MgardRefactorer::default().refactor(&data, &[64]).unwrap();
        let bytes = s.to_bytes();
        assert!(MgardStream::from_bytes(&bytes[..20]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(MgardStream::from_bytes(&bad).is_err());
    }

    #[test]
    fn multidimensional_refactor() {
        let data = field(24 * 18);
        let s = MgardRefactorer::new(Basis::Orthogonal)
            .refactor(&data, &[24, 18])
            .unwrap();
        assert!(s.num_levels() >= 4);
        assert!(s.total_bytes() > s.metadata_bytes());
    }
}
