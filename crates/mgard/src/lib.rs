//! # pqr-mgard — multilevel decomposition + bitplane encoding (PMGARD stand-in)
//!
//! The paper's third progressive family (§V-B) is PMGARD: MGARD's multilevel
//! decomposition combined with per-level bitplane encoding, giving
//! progression in precision with guaranteed L∞ control. The paper's
//! optimisation — **PMGARD-HB** — drops MGARD's L2 projection so that the
//! reconstruction error is *accurately* estimated by summing per-level
//! coefficient errors, instead of going through MGARD's pessimistic
//! multilevel constants. This crate implements both bases from scratch:
//!
//! * [`Basis::Hierarchical`] (HB): fine-node coefficient = value − linear
//!   interpolation of its two coarse neighbours along the active axis.
//!   Interpolation is a convex combination, so an error `e_l` on level-`l`
//!   coefficients adds at most `d·e_l` to the reconstruction (one convex
//!   step per axis pass) — the tight estimator of PMGARD-HB.
//! * [`Basis::Orthogonal`] (OB): HB plus an L2-projection correction of the
//!   coarse nodes per axis pass (linear-FEM mass-matrix tridiagonal solve,
//!   MGARD-style). Exactly invertible at full precision, but the guaranteed
//!   L∞ estimate must compound a per-level operator constant κ — see
//!   [`error_est`] — reproducing the over-retrieval gap of Fig. 3.
//!
//! The decomposition works on arbitrary (non power-of-two) extents in 1–3+
//! dimensions, dimension by dimension on the dyadic hierarchy. Coefficients
//! of each level are encoded most-significant-bitplane first
//! ([`bitplane`]), each plane an independently fetchable segment;
//! [`retrieve::MgardReader`] fetches planes greedily (largest current error
//! contribution first) until the modeled L∞ bound meets a request.
//!
//! ## Example
//!
//! ```
//! use pqr_mgard::{Basis, MgardRefactorer};
//!
//! let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.003).sin()).collect();
//! let refactorer = MgardRefactorer::new(Basis::Hierarchical);
//! let stream = refactorer.refactor(&data, &[4096]).unwrap();
//! let mut reader = stream.reader();
//! reader.refine_to(1e-4).unwrap();
//! let recon = reader.reconstruct();
//! let worst = data.iter().zip(&recon).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
//! assert!(worst <= reader.guaranteed_bound());
//! assert!(reader.guaranteed_bound() <= 1e-4);
//! ```

pub mod bitplane;
pub mod error_est;
pub mod hierarchy;
pub mod projection;
pub mod refactor;
pub mod retrieve;
pub mod transform;

pub use refactor::{LevelMeta, MgardMeta, MgardRefactorer, MgardStream};
pub use retrieve::{MgardCursor, MgardReader};
pub use transform::Basis;
