//! `pqr` — command-line front end for the progressive QoI retrieval library.
//!
//! Workflows:
//!
//! ```sh
//! # archive raw little-endian f64 field files into a progressive archive
//! pqr refactor --out data.pqr --scheme pmgard-hb \
//!     --field Vx:vx.f64 --field Vy:vy.f64 --field Vz:vz.f64 \
//!     --qoi 'VTOT=sqrt(x0^2+x1^2+x2^2)' --mask Vx,Vy,Vz
//!
//! # inspect an archive
//! pqr info data.pqr
//!
//! # retrieve a QoI at a relative tolerance; writes the derived values
//! pqr retrieve data.pqr --qoi VTOT --tol 1e-5 --out vtot.f64
//!
//! # batched multi-QoI retrieval: targets sharing fields fetch them once
//! pqr retrieve data.pqr --qoi VTOT=1e-5 --qoi KE=1e-4
//! ```
//!
//! Fields are raw little-endian `f64` streams (the exchange format of most
//! scientific tooling); QoI expressions use the `pqr_qoi::parse` grammar
//! with `x<i>` referring to the i-th `--field` in order.

use pqr::prelude::*;
use pqr::qoi::parse::parse;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("refactor") => cmd_refactor(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("retrieve") => cmd_retrieve(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(PqrError::InvalidRequest(format!(
            "unknown command '{other}' (try `pqr help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pqr: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "pqr — error-controlled progressive retrieval under derivable QoIs

USAGE:
  pqr refactor --out <archive> [--scheme S] [--mask f1,f2,..]
               [--workers N] [--overlap-io on|off]
               (--field NAME:PATH)... (--qoi 'NAME=EXPR')...
               (encodes fields across N workers and, with overlap on,
               streams finished fields to disk while the rest encode;
               prints an encode-throughput line)
  pqr info <archive>
  pqr retrieve <archive> --qoi NAME --tol REL [--estimator E]
               [--workers N] [--overlap-io on|off]
               [--resume PROGRESS] [--save-progress PROGRESS]
               [--out PATH] [--field NAME --out-field PATH]
  pqr retrieve <archive> (--qoi NAME=TOL)... [--budget BYTES]
               [--estimator E] [--workers N] [--overlap-io on|off]
               [--resume P] [--save-progress P]
               [--field NAME --out-field PATH]
               (batched: QoIs sharing fields fetch them once; prints the
               per-target report table and shared-fragment savings;
               --out is single-target only — use --out-field here)
  pqr serve-bench <archive> (--qoi NAME=TOL)... [--sessions N]
               [--out JSON]
               (drives N concurrent shared-store sessions with the given
               mixed-tolerance targets against N independent cold engines
               and prints the throughput / decode-reuse comparison)
  pqr serve --listen ADDR (--dataset NAME=ARCHIVE)...
               [--workers N] [--queue N] [--permits N]
               [--busy-wait MS] [--retry-after MS]
               [--byte-budget BYTES] [--time-budget MS]
               [--store-budget BYTES] [--coalesce on|off]
               [--coalesce-window MS] [--coalesce-batch N]
               (serves the registered archives over TCP; all clients of a
               dataset share its decode store; --store-budget caps decoded
               store state across ALL datasets — k/m/g suffixes, 0 =
               unbounded, unset defers to PQR_STORE_BUDGET — evicting cold
               fields to their progress markers and rehydrating them
               bit-identically on demand; --coalesce (default on) groups
               concurrently arriving retrieves of one dataset into union
               rounds executed once under a single decode permit, with
               --coalesce-window ms of gathering and early close at
               --coalesce-batch requests; prints the bound address,
               runs until a client sends `--shutdown`)
  pqr client ADDR --dataset NAME (--qoi NAME=TOL)...
               [--budget BYTES] [--values NAME [--out PATH]]
               [--resume PROGRESS] [--save-progress PROGRESS]
               [--retries N]
  pqr client ADDR --stats | --shutdown
               (one retrieve per invocation; Busy sheds retry per the
               server's hint up to --retries times)

ESTIMATORS: paper (default) | exact-sqrt | interval
WORKERS:    worker threads (0 = the PQR_THREADS env default) — decode
            threads per refinement round on retrieve, encode threads on
            refactor; --overlap-io overlaps fragment I/O with compute on
            both paths (on by default)
PROGRESS:   a small progress file; --resume continues a previous retrieval
            incrementally, --save-progress records where this one stopped

SCHEMES: psz3 | psz3-delta | pmgard | pmgard-hb (default) | pzfp
FIELDS:  raw little-endian f64 files (.f32 extension reads/writes single precision)
EXPRS:   pqr_qoi::parse grammar; x0, x1, … index the --field list"
    );
}

/// Pulls `--flag value` pairs and repeated flags out of an arg list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, flag: &str) -> Option<&'a str> {
        self.args
            .windows(2)
            .find(|w| w[0] == flag)
            .map(|w| w[1].as_str())
    }

    fn get_all(&self, flag: &str) -> Vec<&'a str> {
        self.args
            .windows(2)
            .filter(|w| w[0] == flag)
            .map(|w| w[1].as_str())
            .collect()
    }

    fn positional(&self) -> Option<&'a str> {
        // first token that is not a flag or a flag's value
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i].starts_with("--") {
                i += 2;
            } else {
                return Some(self.args[i].as_str());
            }
        }
        None
    }
}

/// Reads a raw little-endian float file. A `.f32` extension selects
/// single precision (widened to f64 — the paper's §VI notes the method
/// "directly applies to single-precision floating-point data"); anything
/// else is read as f64.
fn read_float_file(path: &str) -> Result<Vec<f64>> {
    let bytes = fs::read(path)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
    if path.ends_with(".f32") {
        if !bytes.len().is_multiple_of(4) {
            return Err(PqrError::CorruptStream(format!(
                "'{path}' is not a multiple of 4 bytes"
            )));
        }
        return Ok(bytes
            .chunks_exact(4)
            .map(|c| f64::from(f32::from_le_bytes(c.try_into().unwrap())))
            .collect());
    }
    if !bytes.len().is_multiple_of(8) {
        return Err(PqrError::CorruptStream(format!(
            "'{path}' is not a multiple of 8 bytes"
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Writes a raw little-endian float file; a `.f32` extension narrows to
/// single precision.
fn write_float_file(path: &str, data: &[f64]) -> Result<()> {
    let bytes = if path.ends_with(".f32") {
        let mut b = Vec::with_capacity(data.len() * 4);
        for v in data {
            b.extend_from_slice(&(*v as f32).to_le_bytes());
        }
        b
    } else {
        let mut b = Vec::with_capacity(data.len() * 8);
        for v in data {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    };
    fs::write(path, bytes)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))
}

fn parse_scheme(s: &str) -> Result<Scheme> {
    match s {
        "psz3" => Ok(Scheme::Psz3),
        "psz3-delta" => Ok(Scheme::Psz3Delta),
        "pmgard" => Ok(Scheme::PmgardOb),
        "pmgard-hb" => Ok(Scheme::PmgardHb),
        "pzfp" => Ok(Scheme::Pzfp),
        other => Err(PqrError::InvalidRequest(format!(
            "unknown scheme '{other}'"
        ))),
    }
}

fn cmd_refactor(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let out = flags
        .get("--out")
        .ok_or_else(|| PqrError::InvalidRequest("refactor needs --out".into()))?;
    let scheme = parse_scheme(flags.get("--scheme").unwrap_or("pmgard-hb"))?;

    // fields: NAME:PATH, all must agree in length
    let field_specs = flags.get_all("--field");
    if field_specs.is_empty() {
        return Err(PqrError::InvalidRequest("need at least one --field".into()));
    }
    let mut fields = Vec::new();
    for spec in &field_specs {
        let (name, path) = spec.split_once(':').ok_or_else(|| {
            PqrError::InvalidRequest(format!("--field wants NAME:PATH, got '{spec}'"))
        })?;
        fields.push((name.to_string(), read_float_file(path)?));
    }
    let n = fields[0].1.len();
    let mut builder = ArchiveBuilder::new(&[n]).scheme(scheme);
    for (name, data) in &fields {
        builder = builder.field(name, data.clone());
    }

    for spec in flags.get_all("--qoi") {
        let (name, text) = spec.split_once('=').ok_or_else(|| {
            PqrError::InvalidRequest(format!("--qoi wants NAME=EXPR, got '{spec}'"))
        })?;
        builder = builder.qoi(name, parse(text)?);
    }
    if let Some(mask_fields) = flags.get("--mask") {
        let names: Vec<&str> = mask_fields.split(',').collect();
        builder = builder.mask(&names);
    }
    // encode knobs: worker budget (0 = PQR_THREADS default) and whether
    // finished fields stream to disk while later fields still encode
    let workers = match flags.get("--workers") {
        Some(w) => w
            .parse()
            .map_err(|_| PqrError::InvalidRequest(format!("bad --workers '{w}' (want a count)")))?,
        None => 0,
    };
    let overlap_io = match flags.get("--overlap-io") {
        Some(o) => parse_bool("--overlap-io", o)?,
        None => true,
    };

    let raw_bytes = field_specs.len() * n * 8;
    let start = std::time::Instant::now();
    let written = builder.build_to_path(out, workers, overlap_io)?;
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "archived {} fields × {} points → {} ({} B, raw {} B)",
        field_specs.len(),
        n,
        out,
        written,
        raw_bytes
    );
    eprintln!(
        "encode: {:.1} fields/s, {:.1} MB/s raw in {:.1} ms ({} workers, overlap {})",
        field_specs.len() as f64 / secs,
        raw_bytes as f64 / 1e6 / secs,
        secs * 1e3,
        if workers == 0 {
            "auto".to_string()
        } else {
            workers.to_string()
        },
        if overlap_io { "on" } else { "off" },
    );
    Ok(())
}

/// Opens an archive **lazily**: only the manifest is read here; retrieval
/// fetches fragment byte ranges on demand. Returns the archive and its
/// on-disk size (for the partial-read report).
fn load_archive(flags: &Flags<'_>) -> Result<(Archive, u64)> {
    let path = flags
        .positional()
        .ok_or_else(|| PqrError::InvalidRequest("missing archive path".into()))?;
    let size = fs::metadata(path)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot stat '{path}': {e}")))?
        .len();
    Ok((Archive::open(path)?, size))
}

fn cmd_info(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let (archive, file_size) = load_archive(&flags)?;
    // everything `info` prints comes from the manifest — no payload
    // fragment is touched
    let manifest = archive.manifest()?;
    println!("shape: {:?}", manifest.dims);
    println!("fields ({}):", manifest.num_fields());
    for f in &manifest.fields {
        println!(
            "  {:<16} {:<12} range {:.6e}  {} fragments, {} B",
            f.name,
            f.scheme.name(),
            f.range,
            f.fragments.len(),
            f.total_bytes()
        );
    }
    println!(
        "mask: {}",
        manifest
            .mask
            .as_ref()
            .map_or("none".to_string(), |m| format!(
                "{} of {} points",
                m.masked_count(),
                m.len()
            ))
    );
    println!("qois ({}):", archive.qoi_names().len());
    for name in archive.qoi_names() {
        println!(
            "  {:<16} range {:.6e}  {}",
            name,
            archive.qoi_range(name).unwrap_or(0.0),
            archive.qoi_expr(name).unwrap()
        );
    }
    println!(
        "archived {} B ({} B payload), raw {} B ({:.2}x)",
        file_size,
        manifest.total_payload_bytes(),
        manifest.raw_bytes(),
        manifest.raw_bytes() as f64 / file_size.max(1) as f64
    );
    Ok(())
}

/// Parses an on/off-style boolean flag value.
fn parse_bool(flag: &str, s: &str) -> Result<bool> {
    match s {
        "on" | "true" | "1" | "yes" => Ok(true),
        "off" | "false" | "0" | "no" => Ok(false),
        other => Err(PqrError::InvalidRequest(format!(
            "bad {flag} value '{other}' (want on|off)"
        ))),
    }
}

/// Builds the retrieval engine configuration from the shared retrieve
/// flags: `--estimator`, `--workers` (decode threads per refinement round;
/// 0 = the `PQR_THREADS` env default) and `--overlap-io` (the chunked
/// prefetcher that hides fragment I/O behind decode).
fn engine_config_from_flags(flags: &Flags<'_>) -> Result<EngineConfig> {
    let mut cfg = EngineConfig::default();
    if let Some(est) = flags.get("--estimator") {
        cfg.bound_config = parse_estimator(est)?;
    }
    if let Some(w) = flags.get("--workers") {
        cfg.workers = w
            .parse()
            .map_err(|_| PqrError::InvalidRequest(format!("bad --workers '{w}' (want a count)")))?;
    }
    if let Some(o) = flags.get("--overlap-io") {
        cfg.overlap_io = parse_bool("--overlap-io", o)?;
    }
    Ok(cfg)
}

fn parse_estimator(s: &str) -> Result<BoundConfig> {
    match s {
        "paper" => Ok(BoundConfig::default()),
        "exact-sqrt" => Ok(BoundConfig {
            sqrt_mode: SqrtMode::Exact,
            ..Default::default()
        }),
        "interval" => Ok(BoundConfig {
            estimator: Estimator::Interval,
            ..Default::default()
        }),
        other => Err(PqrError::InvalidRequest(format!(
            "unknown estimator '{other}' (paper | exact-sqrt | interval)"
        ))),
    }
}

fn cmd_retrieve(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let qoi_flags = flags.get_all("--qoi");
    if qoi_flags.iter().any(|s| s.contains('=')) {
        return cmd_retrieve_multi(&flags, &qoi_flags);
    }
    let (mut archive, file_size) = load_archive(&flags)?;
    let qoi = flags
        .get("--qoi")
        .ok_or_else(|| PqrError::InvalidRequest("retrieve needs --qoi NAME".into()))?;
    let tol: f64 = flags
        .get("--tol")
        .ok_or_else(|| PqrError::InvalidRequest("retrieve needs --tol REL".into()))?
        .parse()
        .map_err(|_| PqrError::InvalidRequest("bad --tol".into()))?;
    archive.set_engine_config(engine_config_from_flags(&flags)?);

    let mut session = match flags.get("--resume") {
        Some(path) => {
            let progress = fs::read(path)
                .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
            archive.resume_session(&progress)?
        }
        None => archive.session()?,
    };
    let report = session.request(qoi, tol)?;
    eprintln!(
        "satisfied: {}  fetched {} B ({} new)  bitrate {:.3}  est err {:.3e} (tolerance {:.3e})",
        report.satisfied,
        report.total_fetched,
        report.bytes_fetched,
        report.bitrate,
        report.max_est_errors[0],
        tol * archive.qoi_range(qoi).unwrap_or(1.0)
    );
    let stats = archive.source_stats();
    eprintln!(
        "disk: {} fragment reads, {} B of the {} B archive ({:.1}%)",
        stats.fetches,
        stats.fetched_bytes,
        file_size,
        100.0 * stats.fetched_bytes as f64 / file_size.max(1) as f64
    );
    if let Some(path) = flags.get("--save-progress") {
        fs::write(path, session.save_progress())
            .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))?;
        eprintln!("saved retrieval progress → {path}");
    }
    if !report.satisfied {
        return Err(PqrError::UnboundableQoi(format!(
            "representation exhausted before '{qoi}' reached {tol:.1e}"
        )));
    }
    if let Some(out) = flags.get("--out") {
        write_float_file(out, &session.qoi_values(qoi)?)?;
        eprintln!("wrote derived QoI values → {out}");
    }
    if let (Some(field), Some(path)) = (flags.get("--field"), flags.get("--out-field")) {
        write_float_file(path, session.reconstruction(field)?)?;
        eprintln!("wrote reconstructed field '{field}' → {path}");
    }
    Ok(())
}

/// Batched multi-QoI retrieval: repeated `--qoi NAME=TOL` flags resolve
/// into one `RetrievalRequest`, so targets sharing fields fetch those
/// fields' fragments once. Prints the per-target report table plus the
/// shared-fragment savings and read-op lines.
fn cmd_retrieve_multi(flags: &Flags<'_>, qoi_flags: &[&str]) -> Result<()> {
    if flags.get("--tol").is_some() || qoi_flags.iter().any(|s| !s.contains('=')) {
        return Err(PqrError::InvalidRequest(
            "mixing --qoi NAME=TOL with --qoi NAME/--tol is ambiguous; \
             use one form"
                .into(),
        ));
    }
    if flags.get("--out").is_some() {
        return Err(PqrError::InvalidRequest(
            "--out is ambiguous with several targets; use \
             --field NAME --out-field PATH for a reconstruction, or the \
             single-target form (--qoi NAME --tol REL --out PATH) for \
             derived QoI values"
                .into(),
        ));
    }
    let (mut archive, file_size) = load_archive(flags)?;
    archive.set_engine_config(engine_config_from_flags(flags)?);
    let mut request = RetrievalRequest::new();
    for spec in qoi_flags {
        let (name, tol_text) = spec.split_once('=').expect("filtered above");
        let tol: f64 = tol_text
            .parse()
            .map_err(|_| PqrError::InvalidRequest(format!("bad tolerance in --qoi '{spec}'")))?;
        request = request.qoi(name, tol);
    }
    if let Some(budget) = flags.get("--budget") {
        request =
            request.byte_budget(budget.parse().map_err(|_| {
                PqrError::InvalidRequest("bad --budget (want a byte count)".into())
            })?);
    }
    let mut session = match flags.get("--resume") {
        Some(path) => {
            let progress = fs::read(path)
                .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
            archive.resume_session(&progress)?
        }
        None => archive.session()?,
    };
    let report = session.execute(&request)?;

    println!(
        "{:<16} {:>11} {:>12} {:>5} {:>12}",
        "target", "tol(abs)", "est err", "ok", "bytes"
    );
    for t in &report.targets {
        println!(
            "{:<16} {:>11.3e} {:>12.3e} {:>5} {:>12}",
            t.name,
            t.tol_abs,
            t.max_est_error,
            if t.satisfied { "yes" } else { "NO" },
            t.bytes
        );
    }
    println!(
        "shared fragments saved {} B across {} targets; fetched {} B total ({} new) in {} rounds",
        report.shared_bytes_saved,
        report.targets.len(),
        report.total_fetched,
        report.bytes_fetched,
        report.iterations
    );
    let stats = archive.source_stats();
    eprintln!(
        "disk: {} read ops for {} fragments, {} B of the {} B archive ({:.1}%)",
        stats.read_ops,
        stats.fetches,
        stats.fetched_bytes,
        file_size,
        100.0 * stats.fetched_bytes as f64 / file_size.max(1) as f64
    );
    if report.overlap_saved_ms > 0 {
        eprintln!(
            "overlap: {} ms of fragment I/O hidden behind decode",
            report.overlap_saved_ms
        );
    }
    if let Some(path) = flags.get("--save-progress") {
        fs::write(path, session.save_progress())
            .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))?;
        eprintln!("saved retrieval progress → {path}");
    }
    if !report.satisfied {
        return Err(PqrError::UnboundableQoi(if report.budget_exhausted {
            "byte budget exhausted before every target certified".into()
        } else {
            "representation exhausted before every target certified".into()
        }));
    }
    if let (Some(field), Some(path)) = (flags.get("--field"), flags.get("--out-field")) {
        write_float_file(path, session.reconstruction(field)?)?;
        eprintln!("wrote reconstructed field '{field}' → {path}");
    }
    Ok(())
}

/// One serve-bench arm's aggregate outcome.
struct ServeArm {
    wall_ms: f64,
    source_bytes: u64,
    fragments_decoded: u64,
    satisfied: usize,
}

/// `pqr serve-bench` — drives N concurrent **shared-store** sessions
/// (one `DatasetService`, mixed tolerances round-robined over the `--qoi`
/// targets) against N **independent cold engines** (each its own lazily
/// opened archive), and reports aggregate throughput, source bytes read
/// and fragments decoded for both arms. The shared arm decodes each
/// bitplane once for everyone; the cold arm re-decodes per session.
fn cmd_serve_bench(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let qoi_flags = flags.get_all("--qoi");
    if qoi_flags.is_empty() || qoi_flags.iter().any(|s| !s.contains('=')) {
        return Err(PqrError::InvalidRequest(
            "serve-bench wants one or more --qoi NAME=TOL targets".into(),
        ));
    }
    let mut targets: Vec<(String, f64)> = Vec::new();
    for spec in &qoi_flags {
        let (name, tol_text) = spec.split_once('=').expect("checked above");
        let tol: f64 = tol_text
            .parse()
            .map_err(|_| PqrError::InvalidRequest(format!("bad tolerance in --qoi '{spec}'")))?;
        targets.push((name.to_string(), tol));
    }
    let sessions: usize = flags
        .get("--sessions")
        .unwrap_or("8")
        .parse()
        .map_err(|_| PqrError::InvalidRequest("bad --sessions (want a count)".into()))?;
    if sessions == 0 {
        return Err(PqrError::InvalidRequest("--sessions must be ≥ 1".into()));
    }
    let path = flags
        .positional()
        .ok_or_else(|| PqrError::InvalidRequest("missing archive path".into()))?;

    // shared arm: one service, N concurrent sessions reading through one
    // decode store; the service's one-time open is inside the timed
    // region, mirroring the cold arm's per-session opens
    let shared = {
        let t0 = std::time::Instant::now();
        let archive = Archive::open(path)?;
        let service = archive.service()?;
        let satisfied = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| -> Result<()> {
            let handles: Vec<_> = (0..sessions)
                .map(|k| {
                    let service = service.clone();
                    let (name, tol) = targets[k % targets.len()].clone();
                    let satisfied = &satisfied;
                    s.spawn(move || -> Result<()> {
                        let mut session = service.session()?;
                        if session.request(&name, tol)?.satisfied {
                            satisfied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("serve-bench session panicked")?;
            }
            Ok(())
        })?;
        ServeArm {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            source_bytes: service.source_stats().fetched_bytes,
            fragments_decoded: service.store_stats().fragments_decoded,
            satisfied: satisfied.load(std::sync::atomic::Ordering::Relaxed),
        }
    };

    // cold arm: N independent engines, each its own archive handle and
    // decode state (the pre-service workflow)
    let cold = {
        let t0 = std::time::Instant::now();
        let bytes = std::sync::atomic::AtomicU64::new(0);
        let decoded = std::sync::atomic::AtomicU64::new(0);
        let satisfied = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| -> Result<()> {
            let handles: Vec<_> = (0..sessions)
                .map(|k| {
                    let (name, tol) = targets[k % targets.len()].clone();
                    let (bytes, decoded, satisfied) = (&bytes, &decoded, &satisfied);
                    s.spawn(move || -> Result<()> {
                        let archive = Archive::open(path)?;
                        let mut session = archive.session()?;
                        if session.request(&name, tol)?.satisfied {
                            satisfied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        bytes.fetch_add(
                            archive.source_stats().fetched_bytes,
                            std::sync::atomic::Ordering::Relaxed,
                        );
                        decoded.fetch_add(
                            session.fragments_decoded(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("serve-bench session panicked")?;
            }
            Ok(())
        })?;
        ServeArm {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            source_bytes: bytes.load(std::sync::atomic::Ordering::Relaxed),
            fragments_decoded: decoded.load(std::sync::atomic::Ordering::Relaxed),
            satisfied: satisfied.load(std::sync::atomic::Ordering::Relaxed),
        }
    };

    let json = serve_bench_json(sessions, &targets, &shared, &cold);
    println!("{json}");
    if let Some(out) = flags.get("--out") {
        fs::write(out, json.as_bytes())
            .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{out}': {e}")))?;
        eprintln!("wrote serve-bench report → {out}");
    }
    Ok(())
}

fn parse_u64_flag(flags: &Flags<'_>, flag: &str) -> Result<Option<u64>> {
    flags
        .get(flag)
        .map(|v| {
            v.parse()
                .map_err(|_| PqrError::InvalidRequest(format!("bad {flag} '{v}' (want a number)")))
        })
        .transpose()
}

/// `pqr serve` — a multi-tenant TCP server over the registered archives.
/// Archives are opened lazily; every client session of one dataset shares
/// its decode store. Runs until a client sends a `shutdown` frame
/// (`pqr client ADDR --shutdown`), then prints the final stats summary.
fn cmd_serve(args: &[String]) -> Result<()> {
    use pqr::serve::{Registry, Server, ServerConfig};
    let flags = Flags { args };
    let listen = flags
        .get("--listen")
        .ok_or_else(|| PqrError::InvalidRequest("serve needs --listen ADDR".into()))?;
    let dataset_specs = flags.get_all("--dataset");
    if dataset_specs.is_empty() {
        return Err(PqrError::InvalidRequest(
            "serve needs at least one --dataset NAME=ARCHIVE".into(),
        ));
    }
    // --store-budget BYTES (k/m/g suffixes; 0 = unbounded) caps decoded
    // store state *across all datasets*: one shared budget, global
    // eviction pressure. Unset defers to PQR_STORE_BUDGET / unbounded.
    let mut registry = match flags.get("--store-budget") {
        Some(text) => {
            let limit = pqr::progressive::pager::parse_budget(text)?;
            Registry::with_budget(std::sync::Arc::new(
                pqr::progressive::pager::StoreBudget::with_limit(limit),
            ))
        }
        None => Registry::new(),
    };
    for spec in &dataset_specs {
        let (name, path) = spec.split_once('=').ok_or_else(|| {
            PqrError::InvalidRequest(format!("--dataset wants NAME=ARCHIVE, got '{spec}'"))
        })?;
        registry.register(name, Archive::open(path)?)?;
        eprintln!("registered dataset '{name}' ← {path}");
    }

    let mut config = ServerConfig::default();
    if let Some(v) = parse_u64_flag(&flags, "--workers")? {
        config.workers = v as usize;
    }
    if let Some(v) = parse_u64_flag(&flags, "--queue")? {
        config.pending_queue = v as usize;
    }
    if let Some(v) = parse_u64_flag(&flags, "--permits")? {
        config.decode_permits = v as usize;
    }
    if let Some(v) = parse_u64_flag(&flags, "--busy-wait")? {
        config.busy_wait_ms = v;
    }
    if let Some(v) = parse_u64_flag(&flags, "--retry-after")? {
        config.retry_after_ms = v;
    }
    if let Some(v) = parse_u64_flag(&flags, "--byte-budget")? {
        config.client_byte_budget = Some(v as usize);
    }
    if let Some(v) = parse_u64_flag(&flags, "--time-budget")? {
        config.client_time_budget_ms = Some(v);
    }
    if let Some(v) = flags.get("--coalesce") {
        config.coalesce = match v {
            "on" => true,
            "off" => false,
            other => {
                return Err(PqrError::InvalidRequest(format!(
                    "--coalesce takes on|off, got '{other}'"
                )))
            }
        };
    }
    if let Some(v) = parse_u64_flag(&flags, "--coalesce-window")? {
        config.coalesce_window_ms = v;
    }
    if let Some(v) = parse_u64_flag(&flags, "--coalesce-batch")? {
        config.coalesce_min_batch = v as usize;
    }

    let server = Server::start(listen, registry, config)?;
    // scripts parse this line to learn the ephemeral port — keep it stable
    println!("pqr-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let snap = server.wait();
    eprintln!(
        "pqr-serve done: {} connections, {} retrieves, {} errors, \
         shed {} admission / {} busy, {} B in / {} B out",
        snap.connections,
        snap.retrieves,
        snap.errors,
        snap.shed_admission,
        snap.shed_busy,
        snap.bytes_in,
        snap.bytes_out
    );
    Ok(())
}

/// `pqr client` — one protocol exchange with a `pqr serve` endpoint:
/// retrieve (with Busy retries per the server's hint), `--stats`, or
/// `--shutdown`.
fn cmd_client(args: &[String]) -> Result<()> {
    use pqr::serve::{Reply, ServeClient};
    let flags = Flags { args };
    let addr = flags
        .positional()
        .ok_or_else(|| PqrError::InvalidRequest("client needs the server ADDR".into()))?;
    let mut client = ServeClient::connect(addr)?;
    client.set_io_timeout(Some(std::time::Duration::from_secs(120)))?;

    if flags.args.iter().any(|a| a == "--shutdown") {
        client.shutdown_server()?;
        eprintln!("server at {addr} acknowledged shutdown");
        return Ok(());
    }
    if flags.args.iter().any(|a| a == "--stats") {
        let stats = client.stats()?.expect_ok("stats");
        println!(
            "connections {}  requests {}  retrieves {}  errors {}",
            stats.connections, stats.requests, stats.retrieves, stats.errors
        );
        println!(
            "shed: admission {}  busy {}   disconnects mid-request {}",
            stats.shed_admission, stats.shed_busy, stats.disconnects_mid_request
        );
        println!(
            "wire: {} B in  {} B out   queue wait {} ms total, {} ms max",
            stats.bytes_in, stats.bytes_out, stats.queue_wait_ms_total, stats.queue_wait_ms_max
        );
        println!(
            "coalesce: {} rounds  {} requests  {} fallbacks   service {} ms total",
            stats.coalesced_rounds,
            stats.coalesced_requests,
            stats.coalesce_fallbacks,
            stats.service_ms_total
        );
        for d in &stats.datasets {
            println!(
                "dataset {:<16} decoded {}  advances {}  reuses {}  adoptions {}  source {} B",
                d.name,
                d.store.fragments_decoded,
                d.store.refine_advances,
                d.store.refine_reuses,
                d.store.adoptions,
                d.source.fetched_bytes
            );
            println!(
                "  memory: resident {} B / budget {}  evictions {}  rehydrated {} frags / {} B",
                d.store.resident_bytes,
                if d.store.budget_bytes == 0 {
                    "unbounded".to_string()
                } else {
                    format!("{} B", d.store.budget_bytes)
                },
                d.store.evictions,
                d.store.rehydration_decodes,
                d.store.rehydration_bytes
            );
            println!(
                "  reconstruct: {} recompose passes  {} cache hits  {} ms rebuilding",
                d.store.recompose_passes,
                d.store.recon_cache_hits,
                d.store.reconstruct_nanos / 1_000_000
            );
        }
        client.close()?;
        return Ok(());
    }

    let dataset = flags
        .get("--dataset")
        .ok_or_else(|| PqrError::InvalidRequest("client needs --dataset NAME".into()))?;
    let qoi_flags = flags.get_all("--qoi");
    if qoi_flags.is_empty() || qoi_flags.iter().any(|s| !s.contains('=')) {
        return Err(PqrError::InvalidRequest(
            "client wants one or more --qoi NAME=TOL targets".into(),
        ));
    }
    let mut request = RetrievalRequest::new();
    for spec in &qoi_flags {
        let (name, tol_text) = spec.split_once('=').expect("checked above");
        let tol: f64 = tol_text
            .parse()
            .map_err(|_| PqrError::InvalidRequest(format!("bad tolerance in --qoi '{spec}'")))?;
        request = request.qoi(name, tol);
    }
    if let Some(budget) = parse_u64_flag(&flags, "--budget")? {
        request = request.byte_budget(budget as usize);
    }
    let retries = parse_u64_flag(&flags, "--retries")?.unwrap_or(5);

    let info = match flags.get("--resume") {
        Some(path) => {
            let progress = fs::read(path)
                .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
            client.resume(dataset, &progress)?
        }
        None => client.open(dataset)?,
    };
    let info = info.expect_ok("open");
    eprintln!(
        "opened '{dataset}': shape {:?}, {} fields, QoIs {:?}",
        info.dims,
        info.fields.len(),
        info.qois
    );

    let want_values: Vec<&str> = flags.get_all("--values");
    let save_progress = flags.get("--save-progress").is_some();
    let mut attempt = 0u64;
    let report = loop {
        match client.retrieve(&request, &want_values, save_progress)? {
            Reply::Ok(report) => break report,
            Reply::Busy {
                retry_after_ms,
                reason,
            } => {
                attempt += 1;
                if attempt > retries {
                    return Err(PqrError::InvalidRequest(format!(
                        "server still busy after {retries} retries ({reason})"
                    )));
                }
                eprintln!("server busy ({reason}); retrying in {retry_after_ms} ms");
                std::thread::sleep(std::time::Duration::from_millis(retry_after_ms));
            }
        }
    };

    println!(
        "{:<16} {:>11} {:>12} {:>5} {:>12}",
        "target", "tol(abs)", "est err", "ok", "bytes"
    );
    for t in &report.targets {
        println!(
            "{:<16} {:>11.3e} {:>12.3e} {:>5} {:>12}",
            t.name,
            t.tol_abs,
            t.max_est_error,
            if t.satisfied { "yes" } else { "NO" },
            t.bytes
        );
    }
    println!(
        "satisfied: {}  fetched {} B ({} new)  {} rounds  queue wait {} ms  \
         store decoded {} / reused {}",
        report.satisfied,
        report.total_fetched,
        report.bytes_fetched,
        report.iterations,
        report.queue_wait_ms,
        report.store_fragments_decoded,
        report.store_refine_reuses
    );
    println!(
        "reconstruct: {} recompose passes  {} cache hits  {} ms rebuilding",
        report.recompose_passes, report.recon_cache_hits, report.reconstruct_ms
    );
    if report.budget_exhausted {
        eprintln!("byte budget exhausted — the bounds above are the achieved partials");
    }
    if let Some(path) = flags.get("--save-progress") {
        let blob = report
            .progress
            .as_ref()
            .ok_or_else(|| PqrError::CorruptStream("server sent no progress blob".into()))?;
        fs::write(path, blob)
            .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))?;
        eprintln!("saved retrieval progress → {path}");
    }
    if let Some(out) = flags.get("--out") {
        let name = want_values.first().ok_or_else(|| {
            PqrError::InvalidRequest("--out needs --values NAME to pick the QoI".into())
        })?;
        let values = report.values.get(*name).ok_or_else(|| {
            PqrError::CorruptStream(format!("server sent no values for '{name}'"))
        })?;
        write_float_file(out, values)?;
        eprintln!("wrote derived QoI values → {out}");
    }
    client.close()?;
    if !report.satisfied && !report.budget_exhausted {
        return Err(PqrError::UnboundableQoi(
            "representation exhausted before every target certified".into(),
        ));
    }
    Ok(())
}

/// Renders the serve-bench comparison as the `pqr-bench-serve/1` JSON
/// schema (shared with the committed `BENCH_serve.json`).
fn serve_bench_json(
    sessions: usize,
    targets: &[(String, f64)],
    shared: &ServeArm,
    cold: &ServeArm,
) -> String {
    let per_s = |arm: &ServeArm| sessions as f64 / (arm.wall_ms / 1e3).max(1e-9);
    let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    let arm = |a: &ServeArm| {
        format!(
            "{{\"wall_ms\": {:.2}, \"requests_per_s\": {:.2}, \"source_bytes\": {}, \
             \"fragments_decoded\": {}, \"satisfied\": {}}}",
            a.wall_ms,
            per_s(a),
            a.source_bytes,
            a.fragments_decoded,
            a.satisfied
        )
    };
    // QoI names are user-supplied strings — escape them for JSON
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let tol_list = targets
        .iter()
        .map(|(n, t)| format!("{{\"qoi\": \"{}\", \"tol\": {t:e}}}", escape(n)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"schema\": \"pqr-bench-serve/1\",\n  \"sessions\": {sessions},\n  \
         \"targets\": [{tol_list}],\n  \"shared\": {},\n  \"cold\": {},\n  \
         \"speedup\": {:.3},\n  \"decode_reuse_ratio\": {:.3},\n  \
         \"bytes_read_ratio\": {:.3}\n}}",
        arm(shared),
        arm(cold),
        cold.wall_ms / shared.wall_ms.max(1e-9),
        ratio(cold.fragments_decoded, shared.fragments_decoded),
        ratio(cold.source_bytes, shared.source_bytes),
    )
}
