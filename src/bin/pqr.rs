//! `pqr` — command-line front end for the progressive QoI retrieval library.
//!
//! Workflows:
//!
//! ```sh
//! # archive raw little-endian f64 field files into a progressive archive
//! pqr refactor --out data.pqr --scheme pmgard-hb \
//!     --field Vx:vx.f64 --field Vy:vy.f64 --field Vz:vz.f64 \
//!     --qoi 'VTOT=sqrt(x0^2+x1^2+x2^2)' --mask Vx,Vy,Vz
//!
//! # inspect an archive
//! pqr info data.pqr
//!
//! # retrieve a QoI at a relative tolerance; writes the derived values
//! pqr retrieve data.pqr --qoi VTOT --tol 1e-5 --out vtot.f64
//!
//! # batched multi-QoI retrieval: targets sharing fields fetch them once
//! pqr retrieve data.pqr --qoi VTOT=1e-5 --qoi KE=1e-4
//! ```
//!
//! Fields are raw little-endian `f64` streams (the exchange format of most
//! scientific tooling); QoI expressions use the `pqr_qoi::parse` grammar
//! with `x<i>` referring to the i-th `--field` in order.

use pqr::prelude::*;
use pqr::qoi::parse::parse;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("refactor") => cmd_refactor(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("retrieve") => cmd_retrieve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(PqrError::InvalidRequest(format!(
            "unknown command '{other}' (try `pqr help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pqr: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "pqr — error-controlled progressive retrieval under derivable QoIs

USAGE:
  pqr refactor --out <archive> [--scheme S] [--mask f1,f2,..]
               (--field NAME:PATH)... (--qoi 'NAME=EXPR')...
  pqr info <archive>
  pqr retrieve <archive> --qoi NAME --tol REL [--estimator E]
               [--resume PROGRESS] [--save-progress PROGRESS]
               [--out PATH] [--field NAME --out-field PATH]
  pqr retrieve <archive> (--qoi NAME=TOL)... [--budget BYTES]
               [--estimator E] [--resume P] [--save-progress P]
               [--field NAME --out-field PATH]
               (batched: QoIs sharing fields fetch them once; prints the
               per-target report table and shared-fragment savings;
               --out is single-target only — use --out-field here)

ESTIMATORS: paper (default) | exact-sqrt | interval
PROGRESS:   a small progress file; --resume continues a previous retrieval
            incrementally, --save-progress records where this one stopped

SCHEMES: psz3 | psz3-delta | pmgard | pmgard-hb (default) | pzfp
FIELDS:  raw little-endian f64 files (.f32 extension reads/writes single precision)
EXPRS:   pqr_qoi::parse grammar; x0, x1, … index the --field list"
    );
}

/// Pulls `--flag value` pairs and repeated flags out of an arg list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, flag: &str) -> Option<&'a str> {
        self.args
            .windows(2)
            .find(|w| w[0] == flag)
            .map(|w| w[1].as_str())
    }

    fn get_all(&self, flag: &str) -> Vec<&'a str> {
        self.args
            .windows(2)
            .filter(|w| w[0] == flag)
            .map(|w| w[1].as_str())
            .collect()
    }

    fn positional(&self) -> Option<&'a str> {
        // first token that is not a flag or a flag's value
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i].starts_with("--") {
                i += 2;
            } else {
                return Some(self.args[i].as_str());
            }
        }
        None
    }
}

/// Reads a raw little-endian float file. A `.f32` extension selects
/// single precision (widened to f64 — the paper's §VI notes the method
/// "directly applies to single-precision floating-point data"); anything
/// else is read as f64.
fn read_float_file(path: &str) -> Result<Vec<f64>> {
    let bytes = fs::read(path)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
    if path.ends_with(".f32") {
        if !bytes.len().is_multiple_of(4) {
            return Err(PqrError::CorruptStream(format!(
                "'{path}' is not a multiple of 4 bytes"
            )));
        }
        return Ok(bytes
            .chunks_exact(4)
            .map(|c| f64::from(f32::from_le_bytes(c.try_into().unwrap())))
            .collect());
    }
    if !bytes.len().is_multiple_of(8) {
        return Err(PqrError::CorruptStream(format!(
            "'{path}' is not a multiple of 8 bytes"
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Writes a raw little-endian float file; a `.f32` extension narrows to
/// single precision.
fn write_float_file(path: &str, data: &[f64]) -> Result<()> {
    let bytes = if path.ends_with(".f32") {
        let mut b = Vec::with_capacity(data.len() * 4);
        for v in data {
            b.extend_from_slice(&(*v as f32).to_le_bytes());
        }
        b
    } else {
        let mut b = Vec::with_capacity(data.len() * 8);
        for v in data {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    };
    fs::write(path, bytes)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))
}

fn parse_scheme(s: &str) -> Result<Scheme> {
    match s {
        "psz3" => Ok(Scheme::Psz3),
        "psz3-delta" => Ok(Scheme::Psz3Delta),
        "pmgard" => Ok(Scheme::PmgardOb),
        "pmgard-hb" => Ok(Scheme::PmgardHb),
        "pzfp" => Ok(Scheme::Pzfp),
        other => Err(PqrError::InvalidRequest(format!(
            "unknown scheme '{other}'"
        ))),
    }
}

fn cmd_refactor(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let out = flags
        .get("--out")
        .ok_or_else(|| PqrError::InvalidRequest("refactor needs --out".into()))?;
    let scheme = parse_scheme(flags.get("--scheme").unwrap_or("pmgard-hb"))?;

    // fields: NAME:PATH, all must agree in length
    let field_specs = flags.get_all("--field");
    if field_specs.is_empty() {
        return Err(PqrError::InvalidRequest("need at least one --field".into()));
    }
    let mut fields = Vec::new();
    for spec in &field_specs {
        let (name, path) = spec.split_once(':').ok_or_else(|| {
            PqrError::InvalidRequest(format!("--field wants NAME:PATH, got '{spec}'"))
        })?;
        fields.push((name.to_string(), read_float_file(path)?));
    }
    let n = fields[0].1.len();
    let mut builder = ArchiveBuilder::new(&[n]).scheme(scheme);
    for (name, data) in &fields {
        builder = builder.field(name, data.clone());
    }

    for spec in flags.get_all("--qoi") {
        let (name, text) = spec.split_once('=').ok_or_else(|| {
            PqrError::InvalidRequest(format!("--qoi wants NAME=EXPR, got '{spec}'"))
        })?;
        builder = builder.qoi(name, parse(text)?);
    }
    if let Some(mask_fields) = flags.get("--mask") {
        let names: Vec<&str> = mask_fields.split(',').collect();
        builder = builder.mask(&names);
    }
    let archive = builder.build()?;
    let bytes = archive.to_bytes();
    fs::write(out, &bytes)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{out}': {e}")))?;
    eprintln!(
        "archived {} fields × {} points → {} ({} B, raw {} B)",
        field_specs.len(),
        n,
        out,
        bytes.len(),
        archive.refactored().raw_bytes()
    );
    Ok(())
}

/// Opens an archive **lazily**: only the manifest is read here; retrieval
/// fetches fragment byte ranges on demand. Returns the archive and its
/// on-disk size (for the partial-read report).
fn load_archive(flags: &Flags<'_>) -> Result<(Archive, u64)> {
    let path = flags
        .positional()
        .ok_or_else(|| PqrError::InvalidRequest("missing archive path".into()))?;
    let size = fs::metadata(path)
        .map_err(|e| PqrError::InvalidRequest(format!("cannot stat '{path}': {e}")))?
        .len();
    Ok((Archive::open(path)?, size))
}

fn cmd_info(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let (archive, file_size) = load_archive(&flags)?;
    // everything `info` prints comes from the manifest — no payload
    // fragment is touched
    let manifest = archive.manifest()?;
    println!("shape: {:?}", manifest.dims);
    println!("fields ({}):", manifest.num_fields());
    for f in &manifest.fields {
        println!(
            "  {:<16} {:<12} range {:.6e}  {} fragments, {} B",
            f.name,
            f.scheme.name(),
            f.range,
            f.fragments.len(),
            f.total_bytes()
        );
    }
    println!(
        "mask: {}",
        manifest
            .mask
            .as_ref()
            .map_or("none".to_string(), |m| format!(
                "{} of {} points",
                m.masked_count(),
                m.len()
            ))
    );
    println!("qois ({}):", archive.qoi_names().len());
    for name in archive.qoi_names() {
        println!(
            "  {:<16} range {:.6e}  {}",
            name,
            archive.qoi_range(name).unwrap_or(0.0),
            archive.qoi_expr(name).unwrap()
        );
    }
    println!(
        "archived {} B ({} B payload), raw {} B ({:.2}x)",
        file_size,
        manifest.total_payload_bytes(),
        manifest.raw_bytes(),
        manifest.raw_bytes() as f64 / file_size.max(1) as f64
    );
    Ok(())
}

fn parse_estimator(s: &str) -> Result<BoundConfig> {
    match s {
        "paper" => Ok(BoundConfig::default()),
        "exact-sqrt" => Ok(BoundConfig {
            sqrt_mode: SqrtMode::Exact,
            ..Default::default()
        }),
        "interval" => Ok(BoundConfig {
            estimator: Estimator::Interval,
            ..Default::default()
        }),
        other => Err(PqrError::InvalidRequest(format!(
            "unknown estimator '{other}' (paper | exact-sqrt | interval)"
        ))),
    }
}

fn cmd_retrieve(args: &[String]) -> Result<()> {
    let flags = Flags { args };
    let qoi_flags = flags.get_all("--qoi");
    if qoi_flags.iter().any(|s| s.contains('=')) {
        return cmd_retrieve_multi(&flags, &qoi_flags);
    }
    let (mut archive, file_size) = load_archive(&flags)?;
    let qoi = flags
        .get("--qoi")
        .ok_or_else(|| PqrError::InvalidRequest("retrieve needs --qoi NAME".into()))?;
    let tol: f64 = flags
        .get("--tol")
        .ok_or_else(|| PqrError::InvalidRequest("retrieve needs --tol REL".into()))?
        .parse()
        .map_err(|_| PqrError::InvalidRequest("bad --tol".into()))?;
    if let Some(est) = flags.get("--estimator") {
        archive.set_engine_config(EngineConfig {
            bound_config: parse_estimator(est)?,
            ..Default::default()
        });
    }

    let mut session = match flags.get("--resume") {
        Some(path) => {
            let progress = fs::read(path)
                .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
            archive.resume_session(&progress)?
        }
        None => archive.session()?,
    };
    let report = session.request(qoi, tol)?;
    eprintln!(
        "satisfied: {}  fetched {} B ({} new)  bitrate {:.3}  est err {:.3e} (tolerance {:.3e})",
        report.satisfied,
        report.total_fetched,
        report.bytes_fetched,
        report.bitrate,
        report.max_est_errors[0],
        tol * archive.qoi_range(qoi).unwrap_or(1.0)
    );
    let stats = archive.source_stats();
    eprintln!(
        "disk: {} fragment reads, {} B of the {} B archive ({:.1}%)",
        stats.fetches,
        stats.fetched_bytes,
        file_size,
        100.0 * stats.fetched_bytes as f64 / file_size.max(1) as f64
    );
    if let Some(path) = flags.get("--save-progress") {
        fs::write(path, session.save_progress())
            .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))?;
        eprintln!("saved retrieval progress → {path}");
    }
    if !report.satisfied {
        return Err(PqrError::UnboundableQoi(format!(
            "representation exhausted before '{qoi}' reached {tol:.1e}"
        )));
    }
    if let Some(out) = flags.get("--out") {
        write_float_file(out, &session.qoi_values(qoi)?)?;
        eprintln!("wrote derived QoI values → {out}");
    }
    if let (Some(field), Some(path)) = (flags.get("--field"), flags.get("--out-field")) {
        write_float_file(path, session.reconstruction(field)?)?;
        eprintln!("wrote reconstructed field '{field}' → {path}");
    }
    Ok(())
}

/// Batched multi-QoI retrieval: repeated `--qoi NAME=TOL` flags resolve
/// into one `RetrievalRequest`, so targets sharing fields fetch those
/// fields' fragments once. Prints the per-target report table plus the
/// shared-fragment savings and read-op lines.
fn cmd_retrieve_multi(flags: &Flags<'_>, qoi_flags: &[&str]) -> Result<()> {
    if flags.get("--tol").is_some() || qoi_flags.iter().any(|s| !s.contains('=')) {
        return Err(PqrError::InvalidRequest(
            "mixing --qoi NAME=TOL with --qoi NAME/--tol is ambiguous; \
             use one form"
                .into(),
        ));
    }
    if flags.get("--out").is_some() {
        return Err(PqrError::InvalidRequest(
            "--out is ambiguous with several targets; use \
             --field NAME --out-field PATH for a reconstruction, or the \
             single-target form (--qoi NAME --tol REL --out PATH) for \
             derived QoI values"
                .into(),
        ));
    }
    let (mut archive, file_size) = load_archive(flags)?;
    if let Some(est) = flags.get("--estimator") {
        archive.set_engine_config(EngineConfig {
            bound_config: parse_estimator(est)?,
            ..Default::default()
        });
    }
    let mut request = RetrievalRequest::new();
    for spec in qoi_flags {
        let (name, tol_text) = spec.split_once('=').expect("filtered above");
        let tol: f64 = tol_text
            .parse()
            .map_err(|_| PqrError::InvalidRequest(format!("bad tolerance in --qoi '{spec}'")))?;
        request = request.qoi(name, tol);
    }
    if let Some(budget) = flags.get("--budget") {
        request =
            request.byte_budget(budget.parse().map_err(|_| {
                PqrError::InvalidRequest("bad --budget (want a byte count)".into())
            })?);
    }
    let mut session = match flags.get("--resume") {
        Some(path) => {
            let progress = fs::read(path)
                .map_err(|e| PqrError::InvalidRequest(format!("cannot read '{path}': {e}")))?;
            archive.resume_session(&progress)?
        }
        None => archive.session()?,
    };
    let report = session.execute(&request)?;

    println!(
        "{:<16} {:>11} {:>12} {:>5} {:>12}",
        "target", "tol(abs)", "est err", "ok", "bytes"
    );
    for t in &report.targets {
        println!(
            "{:<16} {:>11.3e} {:>12.3e} {:>5} {:>12}",
            t.name,
            t.tol_abs,
            t.max_est_error,
            if t.satisfied { "yes" } else { "NO" },
            t.bytes
        );
    }
    println!(
        "shared fragments saved {} B across {} targets; fetched {} B total ({} new) in {} rounds",
        report.shared_bytes_saved,
        report.targets.len(),
        report.total_fetched,
        report.bytes_fetched,
        report.iterations
    );
    let stats = archive.source_stats();
    eprintln!(
        "disk: {} read ops for {} fragments, {} B of the {} B archive ({:.1}%)",
        stats.read_ops,
        stats.fetches,
        stats.fetched_bytes,
        file_size,
        100.0 * stats.fetched_bytes as f64 / file_size.max(1) as f64
    );
    if report.overlap_saved_ms > 0 {
        eprintln!(
            "overlap: {} ms of fragment I/O hidden behind decode",
            report.overlap_saved_ms
        );
    }
    if let Some(path) = flags.get("--save-progress") {
        fs::write(path, session.save_progress())
            .map_err(|e| PqrError::InvalidRequest(format!("cannot write '{path}': {e}")))?;
        eprintln!("saved retrieval progress → {path}");
    }
    if !report.satisfied {
        return Err(PqrError::UnboundableQoi(if report.budget_exhausted {
            "byte budget exhausted before every target certified".into()
        } else {
            "representation exhausted before every target certified".into()
        }));
    }
    if let (Some(field), Some(path)) = (flags.get("--field"), flags.get("--out-field")) {
        write_float_file(path, session.reconstruction(field)?)?;
        eprintln!("wrote reconstructed field '{field}' → {path}");
    }
    Ok(())
}
