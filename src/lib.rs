//! # PQR — Error-controlled Progressive Retrieval under Derivable QoIs
//!
//! A from-scratch Rust reproduction of *"Error-controlled Progressive
//! Retrieval of Scientific Data under Derivable Quantities of Interest"*
//! (SC 2024). The umbrella crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`qoi`] | §IV error-bound calculus over QoI expression trees |
//! | [`sz`] | SZ3-like error-bounded compressor (PSZ3 substrate) |
//! | [`mgard`] | multilevel decomposition + bitplanes (PMGARD substrate) |
//! | [`progressive`] | the three representations + Algorithms 1–4 |
//! | [`datagen`] | synthetic GE / Hurricane / NYX / S3D datasets |
//! | [`transfer`] | Globus-like WAN simulation + 96-worker pipeline |
//! | [`core`] | the ergonomic archive/session facade |
//! | [`serve`] | multi-tenant TCP serving layer over `DatasetService` |
//!
//! Start with [`prelude`]:
//!
//! ```
//! use pqr::prelude::*;
//!
//! let n = 500;
//! let field: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).sin()).collect();
//! let archive = ArchiveBuilder::new(&[n])
//!     .field("f", field)
//!     .qoi("f2", QoiExpr::var(0).pow(2))
//!     .build()
//!     .unwrap();
//! let mut session = archive.session().unwrap();
//! assert!(session.request("f2", 1e-4).unwrap().satisfied);
//! ```
//!
//! The repository's `README.md` gives the workspace tour (building, the
//! figure/table harnesses, environment knobs); `DIVERGENCES.md` catalogues
//! the known paper-vs-implementation gaps; `CHANGES.md` is the per-PR log.

pub use pqr_core as core;
pub use pqr_datagen as datagen;
pub use pqr_mgard as mgard;
pub use pqr_progressive as progressive;
pub use pqr_qoi as qoi;
pub use pqr_serve as serve;
pub use pqr_sz as sz;
pub use pqr_transfer as transfer;
pub use pqr_util as util;
pub use pqr_zfp as zfp;

pub use pqr_core::prelude;
